"""Processing-rate comparison: hardware model vs software parsers.

Run with ``pytest benchmarks/bench_throughput.py --benchmark-only``.

The paper's headline numbers (1.57 Gbps VirtexE / 4.26 Gbps Virtex 4)
are *hardware model* outputs: one byte per cycle at the achieved clock
rate. This bench reports those modelled rates next to the measured
wall-clock rates of the software implementations — the compiled
table-driven engine, the interpreted behavioral loop, the LL(1)
parser, the recursive-descent parser, and the cycle-accurate
gate-level simulation — making explicit which numbers are simulated
and which are host-machine measurements.

Measured software rates are also written to ``BENCH_throughput.json``
at the repo root (engine -> Gbps, with derived ``* MB/s`` twins) so
runs are diffable across revisions; ``test_compiled_speedup`` gates
the compiled engine at >= 5x the interpreted one on the XML-RPC
workload, ``test_vector_speedup`` gates the vector wide-datapath
engine at >= 2x the compiled one, ``test_native_speedup`` gates the
native C kernel at >= 10x the compiled one (skipping where no kernel
can be built), ``test_batch_scan`` gates cross-flow
batch stepping against per-flow vector scanning at 32 concurrent
flows (recording the 8/16-flow crossover ungated),
``test_structgen_masks`` gates precomputed constrained-decoding
token masks at >= 10x the naive per-token rescan,
``test_structgen_beam`` gates the batched beam-of-32 engine at
>= 5x thirty-two independent sessions (and the delta encoding at
<= 0.5x full-row wire bytes), and
``test_service_scaling`` records the sharded multi-process service's
1-worker vs 4-worker rates (gating >= 2x only on hosts with enough
CPUs to make that honest).
"""

import os
import time

import pytest

from repro.apps.xmlrpc import WorkloadGenerator
from repro.core.generator import TaggerGenerator
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.fpga.device import get_device
from repro.fpga.report import implement
from repro.grammar.examples import xmlrpc
from repro.software.lexer import Lexer
from repro.software.ll1 import LL1Parser
from repro.software.recursive_descent import RecursiveDescentParser


@pytest.fixture(scope="module")
def grammar():
    return xmlrpc()


@pytest.fixture(scope="module")
def stream():
    generator = WorkloadGenerator(seed=41)
    data, _truth = generator.stream(120)
    return data


def _gbps(n_bytes: int, seconds: float) -> float:
    return n_bytes * 8 / seconds / 1e9


def _best_rate(run, data: bytes, reps: int, warmup: int = 1) -> float:
    """Best-of-``reps`` wall-clock rate in Gbps (noise-resistant).

    ``warmup`` untimed iterations first, so lazily-materialized tables,
    memo warm-up and allocator steady state never pollute the timings.
    """
    for _ in range(warmup):
        run(data)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run(data)
        best = min(best, time.perf_counter() - start)
    return _gbps(len(data), best)


def test_rate_report(report_sink, bench_record, grammar, stream, benchmark):
    """One table with every engine's processing rate on one stream."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []

    circuit = TaggerGenerator().generate(grammar)
    for device_key in ("virtex4-lx200", "virtexe-2000"):
        report = implement(circuit, get_device(device_key))
        rows.append(
            (f"hardware model ({report.device.name})",
             report.bandwidth_gbps, "modelled: 1 byte/cycle x clock")
        )

    compiled = BehavioralTagger(grammar)
    compiled.tag(stream[:4096])  # materialize the lazy tables
    engines = [
        ("compiled tagger", compiled.tag),
        ("vector tagger", BehavioralTagger(grammar, engine="vector").tag),
        ("native tagger (tag)",
         BehavioralTagger(grammar, engine="native").tag),
        ("interpreted tagger",
         BehavioralTagger(grammar, engine="interpreted").tag),
        ("LL(1) parser", lambda d: LL1Parser(grammar).parse_stream(d)),
        ("maximal-munch lexer", Lexer(grammar.lexspec).tokenize),
    ]
    for name, run in engines:
        gbps = _best_rate(run, stream, reps=3)
        rows.append((name, gbps, "host wall-clock"))
        bench_record(name, gbps)

    small = stream[:600]
    gate = GateLevelTagger(circuit)
    start = time.perf_counter()
    gate.events(small)
    elapsed = time.perf_counter() - start
    rows.append(
        ("gate-level simulation", _gbps(len(small), elapsed),
         "host wall-clock (cycle-accurate)")
    )

    width = max(len(r[0]) for r in rows)
    lines = [f"{name:<{width}}  {gbps:>12.6f} Gbps  ({note})"
             for name, gbps, note in rows]
    report_sink("throughput", "\n".join(lines))

    modelled = dict((r[0], r[1]) for r in rows)
    assert modelled["hardware model (Virtex4 LX200)"] == pytest.approx(4.26, rel=0.02)
    assert modelled["hardware model (VirtexE 2000)"] == pytest.approx(1.57, rel=0.02)


def test_compiled_speedup(bench_record, grammar, stream):
    """ISSUE acceptance gate: compiled engine >= 5x the interpreted
    seed loop on the XML-RPC workload, bit-exact on the way."""
    interpreted = BehavioralTagger(grammar, engine="interpreted")
    compiled = BehavioralTagger(grammar)
    assert compiled.tag(stream) == interpreted.tag(stream)

    interpreted_gbps = _best_rate(interpreted.tag, stream, reps=3)
    compiled_gbps = _best_rate(compiled.tag, stream, reps=10)
    bench_record("interpreted tagger", interpreted_gbps)
    bench_record("compiled tagger", compiled_gbps)
    bench_record("compiled/interpreted speedup",
                 compiled_gbps / interpreted_gbps, unit=None)
    assert compiled_gbps / interpreted_gbps >= 5.0


def test_vector_speedup(bench_record, grammar, stream):
    """ISSUE acceptance gate: the vector wide-datapath engine >= 2x
    the compiled engine on the XML-RPC workload, bit-exact on the way.

    Only gates where the dense tables are live (NumPy present); the
    no-NumPy CI job proves the fallback instead.
    """
    vector = BehavioralTagger(grammar, engine="vector")
    if not vector.compiled.vector_active:
        pytest.skip("vector tables unavailable (no NumPy)")
    compiled = BehavioralTagger(grammar)
    assert vector.tag(stream) == compiled.tag(stream)

    # Gate on the scan path (raw detect events): lexeme materialization
    # in tag() is identical engine-independent work that would dilute
    # the engine ratio on this event-dense stream.
    compiled_gbps = _best_rate(compiled.compiled.events, stream, reps=10)
    vector_gbps = _best_rate(vector.compiled.events, stream, reps=10)
    bench_record("compiled tagger scan", compiled_gbps)
    bench_record("vector tagger", vector_gbps)
    bench_record("vector/compiled speedup",
                 vector_gbps / compiled_gbps, unit=None)
    assert vector_gbps / compiled_gbps >= 2.0


def test_native_speedup(bench_record, grammar, stream):
    """ISSUE acceptance gate: the native C kernel >= 10x the compiled
    engine on the XML-RPC workload, bit-exact on the way.

    Only gates where the kernel is live (prebuilt extension or JIT
    build); the no-compiler CI job proves the fallback ladder instead.
    """
    native = BehavioralTagger(grammar, engine="native")
    if not native.compiled.native_active:
        pytest.skip("native kernel unavailable (no compiler or disabled)")
    compiled = BehavioralTagger(grammar)
    assert native.tag(stream) == compiled.tag(stream)
    assert native.compiled.events(stream) == compiled.compiled.events(stream)

    # Same scan-path gate as test_vector_speedup: raw detect events,
    # so engine-independent lexeme materialization doesn't dilute the
    # ratio. events() rides the kernel's events-only fast path (no
    # (event, start) pair tuples cross the C boundary).
    compiled_gbps = _best_rate(compiled.compiled.events, stream, reps=10)
    native_gbps = _best_rate(native.compiled.events, stream, reps=10)
    bench_record("compiled tagger scan", compiled_gbps)
    bench_record("native tagger", native_gbps)
    bench_record("native/compiled speedup",
                 native_gbps / compiled_gbps, unit=None)
    assert native_gbps / compiled_gbps >= 10.0


def test_batch_scan(bench_record, grammar):
    """ISSUE acceptance gate: cross-flow batch stepping beats per-flow
    vector scanning at >= 8 concurrent flows (the win lands at 32 bulk
    flows; the 8- and 16-flow ratios are recorded ungated to keep the
    crossover honest — see DESIGN.md §9)."""
    from repro.apps.xmlrpc.messages import MethodCall, StringValue
    from repro.core.vectorscan import BatchScanner, VectorTagger

    vector = VectorTagger(grammar)
    if not (vector.vector_active and vector._vt.batch_tables()):
        pytest.skip("batch tables unavailable (no NumPy)")
    payload = ("Qx7" * 700)[:2048]
    document = MethodCall(
        method="buy", params=(StringValue(payload),)
    ).encode()
    flow_bytes = document * 12
    chunk_size = 4096

    def run(n_flows: int, batch: bool, reps: int = 5) -> float:
        scanner = BatchScanner(
            vector, min_flows=(2 if batch else 1 << 30)
        )
        flows = [flow_bytes] * n_flows
        total = sum(len(f) for f in flows)
        best = float("inf")
        for _ in range(1 + reps):  # first pass is the warmup
            sessions = [scanner.session() for _ in range(n_flows)]
            offsets = [0] * n_flows
            start = time.perf_counter()
            while any(o < len(f) for o, f in zip(offsets, flows)):
                step_sessions, step_chunks = [], []
                for i in range(n_flows):
                    if offsets[i] < len(flows[i]):
                        step_sessions.append(sessions[i])
                        step_chunks.append(
                            flows[i][offsets[i] : offsets[i] + chunk_size]
                        )
                        offsets[i] += chunk_size
                scanner.feed_many(step_sessions, step_chunks)
            best = min(best, time.perf_counter() - start)
        return _gbps(total, best)

    for n_flows in (8, 16):
        ratio = run(n_flows, batch=True) / run(n_flows, batch=False)
        bench_record(
            f"batch/per-flow ratio ({n_flows} flows)", ratio, unit=None
        )
    per_flow = run(32, batch=False)
    batch = run(32, batch=True)
    bench_record("batch scan", batch)
    bench_record("batch scan per-flow baseline", per_flow)
    bench_record(
        "batch/per-flow ratio (32 flows)", batch / per_flow, unit=None
    )
    assert batch / per_flow >= 1.0


def test_structgen_masks(bench_record, grammar):
    """ISSUE acceptance gate: precomputed per-state token masks serve
    >= 10x faster than naively rescanning every vocabulary token per
    decode step, byte-identical on the way.

    Records the precomputed-hit and context-dependent-fallback split
    alongside the rates, so the trajectory file shows *why* a mask was
    cheap (how much of the vocabulary the trie precomputation covered).
    """
    from repro.apps.structgen import run_mask_bench, synthetic_vocab
    from repro.apps.structgen.bench import random_walk_states
    from repro.apps.structgen.masks import build_mask_table

    vocab = synthetic_vocab(size=1024)
    table = build_mask_table(grammar, vocab)
    for state in random_walk_states(table, steps=60):
        assert table.mask_row(state) == table.naive_row(state)

    report = run_mask_bench(
        grammar, vocab=vocab, steps=200, naive_steps=20
    )
    bench_record("structgen masks/sec", report["masks_per_s"], unit=None)
    bench_record(
        "structgen naive masks/sec",
        report["naive_masks_per_s"],
        unit=None,
    )
    bench_record("structgen speedup", report["speedup"], unit=None)
    bench_record(
        "structgen ci fraction", report["ci_fraction"], unit=None
    )
    assert report["speedup"] >= 10.0


def test_structgen_beam(bench_record, grammar):
    """ISSUE acceptance gate: the batched beam engine serves a
    beam-of-32's masks >= 5x faster than 32 independent
    :class:`MaskSession` replays of the identical schedule
    (byte-identical results are the differential suite's job; this
    test gates the rate and records the wire-delta saving).
    """
    from repro.apps.structgen import run_beam_bench, synthetic_vocab

    vocab = synthetic_vocab(size=1024)
    report = run_beam_bench(
        grammar, vocab=vocab, width=32, steps=120
    )
    bench_record(
        "structgen beam masks/sec",
        report["beam_masks_per_s"],
        unit=None,
    )
    bench_record(
        "structgen beam sessions masks/sec",
        report["sessions_masks_per_s"],
        unit=None,
    )
    bench_record(
        "structgen beam speedup", report["speedup"], unit=None
    )
    bench_record(
        "structgen beam wire delta ratio",
        report["wire_delta_ratio"],
        unit=None,
    )
    bench_record(
        "structgen beam host cpus",
        float(os.cpu_count() or 1),
        unit=None,
    )
    assert report["speedup"] >= 5.0
    # The incremental deltas must actually pay on the wire: shipping
    # patched rows beats shipping full rows by a wide margin.
    assert report["wire_delta_ratio"] <= 0.5


def test_service_scaling(bench_record, grammar, stream):
    """ISSUE acceptance gate: the sharded service scales — 4 workers
    >= 2x one worker on a multi-flow XML-RPC workload, byte-for-byte
    equal to the single-process router.

    The rate assertion needs real parallelism, so it only gates on
    hosts with >= 4 CPUs; the measured rates and the equality check are
    recorded unconditionally.
    """
    from repro.apps.xmlrpc import ContentBasedRouter
    from repro.service import RouterSpec, ScanService

    generator = WorkloadGenerator(seed=43)
    streams = {}
    for index in range(8):
        data, _truth = generator.stream(40)
        streams[f"flow-{index}"] = data
    total_bytes = sum(len(s) for s in streams.values())

    router = ContentBasedRouter()
    expected = {flow: router.route(data) for flow, data in streams.items()}

    def service_rate(n_workers: int) -> float:
        best = float("inf")
        for _ in range(2):
            with ScanService(RouterSpec(), n_workers=n_workers) as service:
                start = time.perf_counter()
                got = service.run_streams(streams, chunk_size=4096)
                best = min(best, time.perf_counter() - start)
            assert got == expected
        return _gbps(total_bytes, best)

    single = service_rate(1)
    sharded = service_rate(4)
    cpus = os.cpu_count() or 1
    bench_record("service 1-worker", single)
    bench_record("service host cpus", float(cpus), unit=None)
    if cpus >= 4:
        bench_record("service 4-worker", sharded)
        bench_record("service speedup (4w/1w)", sharded / single, unit=None)
        assert sharded / single >= 2.0
    else:
        # 4 workers on < 4 CPUs cannot speed anything up; a rate or
        # ratio from such a host would read as a regression in the
        # trajectory file. Record null — for the MB/s twin too — so
        # both entries are visibly "not measured" (the host CPU count
        # above says why). The equality check on `sharded` still ran.
        bench_record("service 4-worker", None)
        bench_record("service speedup (4w/1w)", None, unit=None)


def test_compiled_tagger_rate(benchmark, grammar, stream):
    tagger = BehavioralTagger(grammar)
    tagger.tag(stream[:4096])  # materialize the lazy tables
    tokens = benchmark(lambda: tagger.tag(stream))
    assert tokens


def test_compiled_streaming_rate(benchmark, grammar, stream):
    """Chunked feed (1500-byte MTU slices) through one session."""
    tagger = BehavioralTagger(grammar)
    tagger.tag(stream[:4096])
    chunks = [stream[i:i + 1500] for i in range(0, len(stream), 1500)]

    def run():
        session = tagger.compiled.stream()
        events = []
        for chunk in chunks:
            events += session.feed(chunk)
        return events + session.finish()

    events = benchmark(run)
    assert events


def test_behavioral_tagger_rate(benchmark, grammar, stream):
    tagger = BehavioralTagger(grammar, engine="interpreted")
    tokens = benchmark(lambda: tagger.tag(stream))
    assert tokens


def test_ll1_parser_rate(benchmark, grammar, stream):
    parser = LL1Parser(grammar)
    results = benchmark(lambda: parser.parse_stream(stream))
    assert results


def test_recursive_descent_rate(benchmark, grammar):
    parser = RecursiveDescentParser(grammar)
    generator = WorkloadGenerator(seed=42)
    call, _p, _d = generator.message()
    data = call.encode()
    tokens = benchmark(lambda: parser.parse(data))
    assert tokens


def test_gate_level_simulation_rate(benchmark, grammar):
    circuit = TaggerGenerator().generate(grammar)
    gate = GateLevelTagger(circuit)
    message = (
        b"<methodCall><methodName>buy</methodName>"
        b"<params><param><i4>1</i4></param></params></methodCall>"
    )
    events = benchmark(lambda: gate.events(message))
    assert events
