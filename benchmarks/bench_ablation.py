"""Design-choice ablations (§3.4 encoder, §3.2 duplication, §5.2 ideas).

Run with ``pytest benchmarks/bench_ablation.py --benchmark-only``.

Regenerates the XML-RPC tagger with individual design decisions
flipped and reports the area/frequency consequences, plus the Fig. 7
behavioral ablation (longest-match look-ahead on/off).
"""

import pytest

from repro.bench.ablation import (
    count_repeat_detections,
    format_ablation,
    run_ablation,
)
from repro.core.decoder import DecoderOptions
from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.grammar.examples import xmlrpc


def test_ablation_report(report_sink, benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report_sink("ablation", format_ablation(rows))
    by_name = {row.name: row for row in rows}
    baseline = by_name["baseline (or-tree, dup, nib)"]
    # §3.4: the CASE chain must be dramatically slower.
    assert (
        by_name["case-chain encoder"].frequency_mhz
        < baseline.frequency_mhz / 2
    )
    # Fig. 4 per-char decoders must cost clearly more area.
    assert by_name["per-char Fig. 4 decoders"].n_luts > baseline.n_luts * 1.3
    # §5.2: replication recovers frequency on the big grammar.
    assert (
        by_name["2100B grammar, 2 replica(s)"].frequency_mhz
        > by_name["2100B grammar, 1 replica(s)"].frequency_mhz
    )


def test_lookahead_ablation(benchmark):
    with_la, without = benchmark.pedantic(
        count_repeat_detections, kwargs={"run_length": 12}, rounds=1, iterations=1
    )
    assert (with_la, without) == (1, 12)


@pytest.mark.parametrize(
    "label,options",
    [
        ("baseline", TaggerOptions()),
        ("no-dup", TaggerOptions()),
        ("fig4-decoders", TaggerOptions(decoder=DecoderOptions(nibble_sharing=False))),
        ("priority-encoder", TaggerOptions(encoder_style="priority")),
    ],
)
def test_generation_cost(benchmark, label, options):
    grammar = xmlrpc()
    circuit = benchmark(lambda: TaggerGenerator(options).generate(grammar))
    assert circuit.netlist.n_gates > 0
