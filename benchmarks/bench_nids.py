"""Context-aware NIDS scanning at scale (§5.1 application).

Run with ``pytest benchmarks/bench_nids.py --benchmark-only``.

Scales the §1 false-positive argument to a signature *set*: N byte
patterns that are malicious only inside base64 payloads, swept over an
XML-RPC stream that also carries the same byte patterns as innocent
strings and method names. Reports contextual alerts vs naive hits and
the resulting false-positive rate, plus scan throughput.
"""

import pytest

from repro.apps.nids import ContextSignatureScanner, Signature
from repro.apps.xmlrpc import Base64Value, MethodCall, StringValue
from repro.grammar.examples import xmlrpc


def _signature_set(n: int) -> list[Signature]:
    return [
        Signature(
            name=f"sig{i}",
            pattern=f"BAD{i:02d}".encode(),
            contexts=frozenset({"base64"}),
        )
        for i in range(n)
    ]


def _stream(n_signatures: int, repeats: int) -> tuple[bytes, int]:
    """Messages carrying each signature once maliciously (base64) and
    twice innocently (string payload + method name)."""
    chunks = []
    malicious = 0
    for _ in range(repeats):
        for i in range(n_signatures):
            pattern = f"BAD{i:02d}"
            chunks.append(
                MethodCall("upload", (Base64Value(f"AA{pattern}ZZ"),)).encode()
            )
            malicious += 1
            chunks.append(
                MethodCall(pattern, (StringValue(pattern),)).encode()
            )
    return b"".join(chunks), malicious


def test_nids_report(report_sink, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    grammar = xmlrpc()
    lines = ["sigs | malicious | contextual alerts | naive hits | naive FPs"]
    for n in (4, 16, 32):
        scanner = ContextSignatureScanner(grammar, _signature_set(n))
        stream, malicious = _stream(n, repeats=2)
        comparison = scanner.compare_with_naive(stream)
        lines.append(
            f"{n:>4} | {malicious:>9} | {len(comparison.alerts):>17} | "
            f"{len(comparison.naive_hits):>10} | "
            f"{comparison.false_positives}"
        )
        assert len(comparison.alerts) == malicious  # no misses
        # every innocent embedding is a naive false positive
        assert comparison.false_positives == 2 * malicious
    report_sink("nids", "\n".join(lines))


@pytest.mark.parametrize("n_signatures", [8, 32])
def test_contextual_scan_rate(benchmark, n_signatures):
    grammar = xmlrpc()
    scanner = ContextSignatureScanner(grammar, _signature_set(n_signatures))
    stream, malicious = _stream(n_signatures, repeats=1)
    alerts = benchmark(lambda: scanner.scan(stream))
    assert len(alerts) == malicious
