"""Wide-datapath scaling study (§5.2 future work, realized).

Run with ``pytest benchmarks/bench_wide.py --benchmark-only``.

"Other improvements in speed can be gained by scaling the design to
process 32-bits or 64-bits per clock cycle." This bench generates the
XML-RPC tagger at 1/2/4/8 bytes per cycle and reports the emergent
trade-off on the Virtex 4 model: logic depth and LUTs grow with lane
count, frequency falls, and net bandwidth = frequency × 8 × lanes
still climbs — with diminishing returns.
"""

import pytest

from repro.core.wide import WideGateLevelTagger, WideTaggerGenerator
from repro.fpga.device import get_device
from repro.fpga.techmap import techmap
from repro.fpga.timing import analyze_timing
from repro.grammar.examples import xmlrpc
from repro.rtl.analysis import max_logic_depth


def test_wide_scaling_report(report_sink, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    grammar = xmlrpc()
    device = get_device("virtex4-lx200")
    lines = ["lanes  depth  LUTs   MHz   net-Gbps"]
    previous_bw = 0.0
    previous_freq = None
    for lanes in (1, 2, 4, 8):
        circuit = WideTaggerGenerator(lanes).generate(grammar)
        mapping = techmap(circuit.netlist)
        timing = analyze_timing(mapping, device)
        bandwidth = timing.frequency_mhz * 8 * lanes / 1000
        lines.append(
            f"{lanes:>5} {max_logic_depth(circuit.netlist):>6} "
            f"{mapping.n_luts:>5} {timing.frequency_mhz:>5.0f} "
            f"{bandwidth:>9.2f}"
        )
        assert bandwidth > previous_bw  # net win at every width
        if previous_freq is not None:
            assert timing.frequency_mhz < previous_freq  # clock cost
        previous_bw, previous_freq = bandwidth, timing.frequency_mhz
    lines.append(
        "(paper §5.2: '32-bits or 64-bits per clock cycle' — the "
        "4-lane point is the 32-bit design)"
    )
    report_sink("wide_datapath", "\n".join(lines))


@pytest.mark.parametrize("lanes", [2, 4])
def test_wide_generation_cost(benchmark, lanes):
    grammar = xmlrpc()
    circuit = benchmark(lambda: WideTaggerGenerator(lanes).generate(grammar))
    assert circuit.lanes == lanes


def test_wide_simulation_rate(benchmark):
    grammar = xmlrpc()
    wide = WideGateLevelTagger(WideTaggerGenerator(4).generate(grammar))
    message = (
        b"<methodCall><methodName>buy</methodName>"
        b"<params><param><i4>1</i4></param></params></methodCall>"
    )
    events = benchmark(lambda: wide.events(message))
    assert events
