"""False-positive experiment (§1 motivation) and router throughput.

Run with ``pytest benchmarks/bench_false_positive.py --benchmark-only``.

Quantifies the paper's claim that context-free matching "is
susceptible to false positive identifications": routing accuracy of
the contextual router (Fig. 12) vs a naive string matcher over
adversarial XML-RPC streams, plus software routing throughput.
"""

import pytest

from repro.apps.xmlrpc import ContentBasedRouter, NaiveRouter, WorkloadGenerator
from repro.bench.falsepos import run_false_positive


def test_false_positive_report(report_sink, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["decoy rate | contextual | naive | naive false positives"]
    for rate in (0.0, 0.1, 0.3, 0.5, 1.0):
        result = run_false_positive(
            n_messages=120, adversarial_rate=rate, seed=2006
        )
        lines.append(
            f"{rate:10.1f} | {result.contextual_correct:>4}/120   | "
            f"{result.naive_correct:>4}/120 | {result.naive_false_positives}"
        )
        assert result.contextual_correct == 120
        if rate > 0:
            assert result.naive_correct < 120
    report_sink("false_positive", "\n".join(lines))


@pytest.fixture(scope="module")
def adversarial_stream():
    generator = WorkloadGenerator(seed=99, adversarial_rate=0.3)
    stream, _truth = generator.stream(60)
    return stream


def test_contextual_router_throughput(benchmark, adversarial_stream):
    router = ContentBasedRouter()
    messages = benchmark(lambda: router.route(adversarial_stream))
    assert len(messages) == 60


def test_naive_router_throughput(benchmark, adversarial_stream):
    router = NaiveRouter()
    messages = benchmark(lambda: router.route(adversarial_stream))
    assert len(messages) == 60
