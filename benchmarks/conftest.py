"""Shared benchmark utilities: results directory and report sink."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


_written_this_session: list[str] = []


@pytest.fixture(scope="session")
def report_sink(results_dir):
    """Write (and echo) a named experiment report."""

    def write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        _written_this_session.append(name)
        print(f"\n===== {name} =====")
        print(text)

    return write


def pytest_terminal_summary(terminalreporter):
    """Echo every experiment report into the visible run summary."""
    for name in _written_this_session:
        path = RESULTS_DIR / f"{name}.txt"
        if not path.exists():
            continue
        terminalreporter.section(f"experiment report: {name}")
        terminalreporter.write(path.read_text())
