"""Shared benchmark utilities: results directory, report sink, and the
machine-readable throughput record (``BENCH_throughput.json``)."""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-readable engine -> Gbps record, written at the repo root so
#: CI and the driver can diff throughput across revisions.
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


_written_this_session: list[str] = []


@pytest.fixture(scope="session")
def report_sink(results_dir):
    """Write (and echo) a named experiment report."""

    def write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        _written_this_session.append(name)
        print(f"\n===== {name} =====")
        print(text)

    return write


_bench_rates: dict[str, float | None] = {}


@pytest.fixture(scope="session")
def bench_record():
    """Record one engine's measured rate (Gbps) for BENCH_throughput.json.

    Rates (``unit="gbps"``, the default) also write a derived
    ``"<engine> MB/s"`` key so the record is readable in both units;
    unitless entries (speedup ratios, CPU counts) pass ``unit=None``.
    ``None`` records as JSON ``null`` — the explicit "not measured on
    this host" marker (e.g. worker-scaling ratios on tiny hosts)."""

    def record(
        engine: str, value: float | None, unit: str | None = "gbps"
    ) -> None:
        _bench_rates[engine] = None if value is None else round(value, 9)
        if unit == "gbps":
            _bench_rates[f"{engine} MB/s"] = (
                None if value is None else round(value * 125.0, 6)
            )

    return record


def pytest_sessionfinish(session):
    if _bench_rates:
        existing: dict = {}
        if BENCH_JSON.exists():
            try:
                existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
            except ValueError:
                existing = {}
        # Merge, keeping entries other tools own (e.g. the CLI
        # client-bench's "server round-trip").
        existing.update(_bench_rates)
        from repro.bench.host import host_info

        existing.update(host_info())
        BENCH_JSON.write_text(
            json.dumps(existing, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def pytest_terminal_summary(terminalreporter):
    """Echo every experiment report into the visible run summary."""
    for name in _written_this_session:
        path = RESULTS_DIR / f"{name}.txt"
        if not path.exists():
            continue
        terminalreporter.section(f"experiment report: {name}")
        terminalreporter.write(path.read_text())
