"""Packet path benchmarks (§5.2 FPX deployment substrate).

Run with ``pytest benchmarks/bench_netstack.py --benchmark-only``.

Measures the software packet plumbing the tagger sits behind: frame
parse rate, TCP reassembly under impairment, and the end-to-end
packets → routed-messages pipeline.
"""

import pytest

from repro.apps.netstack import TCPReassembler, TaggingWrapper, TraceGenerator
from repro.apps.netstack.packets import Packet
from repro.apps.xmlrpc import WorkloadGenerator


@pytest.fixture(scope="module")
def trace():
    workload = WorkloadGenerator(seed=31)
    payloads = []
    for _ in range(6):
        stream, _truth = workload.stream(4)
        payloads.append(stream)
    generator = TraceGenerator(
        seed=7, mss=64, reorder_rate=0.25, duplicate_rate=0.15
    )
    packets = generator.trace(payloads)
    return packets, generator.wire_bytes(packets)


def test_netstack_report(report_sink, benchmark, trace):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    packets, frames = trace
    wrapper = TaggingWrapper()
    results = wrapper.process(frames=frames)
    stats = wrapper.reassembler.stats
    total_payload = sum(len(r.payload) for r in results)
    total_messages = sum(len(r.messages) for r in results)
    lines = [
        f"trace: {len(frames)} frames, "
        f"{sum(len(f) for f in frames)} wire bytes, {stats.flows} flows",
        f"reassembly: {stats.in_order} in-order, "
        f"{stats.out_of_order} out-of-order, {stats.duplicates} duplicates",
        f"delivered: {total_payload} payload bytes, "
        f"{total_messages} XML-RPC messages routed",
    ]
    assert wrapper.malformed == 0
    assert total_messages == 24
    report_sink("netstack", "\n".join(lines))


def test_frame_parse_rate(benchmark, trace):
    _packets, frames = trace
    parsed = benchmark(lambda: [Packet.parse(f) for f in frames])
    assert len(parsed) == len(frames)


def test_reassembly_rate(benchmark, trace):
    packets, _frames = trace

    def reassemble():
        reassembler = TCPReassembler()
        total = 0
        for packet in packets:
            _key, data = reassembler.push(packet)
            total += len(data)
        return total

    total = benchmark(reassemble)
    assert total > 0


def test_end_to_end_rate(benchmark, trace):
    _packets, frames = trace

    def pipeline():
        wrapper = TaggingWrapper()
        return wrapper.process(frames=frames)

    results = benchmark(pipeline)
    assert results
