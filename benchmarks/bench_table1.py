"""Table 1 regeneration: device utilization for XML token taggers.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only``.

Prints (and writes to ``benchmarks/results/table1.txt``) every row of
the paper's Table 1 — measured next to published — and benchmarks the
full per-design-point pipeline: grammar scaling → hardware generation
→ LUT mapping → timing analysis.
"""

import pytest

from repro.bench.scaling import scale_point_grammar
from repro.bench.table1 import format_table1, run_table1
from repro.core.generator import TaggerGenerator
from repro.fpga.device import get_device
from repro.fpga.report import implement


def test_table1_report(report_sink, benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report_sink("table1", format_table1(rows))
    # Sanity: anchors hold whenever the table is regenerated.
    by_key = {(r.paper[0], r.paper[3]): r.measured for r in rows}
    assert by_key[("virtex4-lx200", 300)].frequency_mhz == pytest.approx(
        533, rel=0.02
    )
    assert by_key[("virtexe-2000", 300)].frequency_mhz == pytest.approx(
        196, rel=0.02
    )


@pytest.mark.parametrize("copies,label", [(1, "300B"), (4, "1200B"), (9, "3000B")])
def test_design_point_pipeline(benchmark, copies, label):
    """End-to-end cost of producing one Table 1 row."""
    grammar = scale_point_grammar(copies)
    device = get_device("virtex4-lx200")

    def produce_row():
        circuit = TaggerGenerator().generate(grammar)
        return implement(circuit, device)

    report = benchmark(produce_row)
    assert report.n_luts > 0


def test_generation_only(benchmark):
    grammar = scale_point_grammar(1)
    circuit = benchmark(lambda: TaggerGenerator().generate(grammar))
    assert circuit.netlist.n_gates > 0


def test_techmap_only(benchmark):
    from repro.fpga.techmap import techmap

    circuit = TaggerGenerator().generate(scale_point_grammar(4))
    result = benchmark(lambda: techmap(circuit.netlist))
    assert result.n_luts > 0
