"""The metrics registry: counters, gauges, log-bucketed histograms."""

import json

from repro.service.metrics import Histogram, MetricsRegistry


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.counter("bytes").inc(10)
    registry.counter("bytes").inc(5)
    assert registry.snapshot()["counters"]["bytes"] == 15


def test_gauge_overwrites():
    registry = MetricsRegistry()
    registry.gauge("depth").set(7)
    registry.gauge("depth").set(3)
    assert registry.snapshot()["gauges"]["depth"] == 3


def test_instruments_created_on_first_touch():
    registry = MetricsRegistry()
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    registry.histogram("lat")
    assert registry.snapshot()["histograms"]["lat"]["count"] == 0


def test_histogram_summary():
    hist = Histogram("lat")
    for seconds in (0.001, 0.001, 0.001, 0.001, 0.1):
        hist.observe(seconds)
    summary = hist.summary()
    assert summary["count"] == 5
    assert summary["sum_s"] == sum((0.001, 0.001, 0.001, 0.001, 0.1))
    assert summary["max_s"] == 0.1
    # Log2 buckets: quantiles are right to within a factor of two.
    assert 0.001 <= summary["p50_s"] <= 0.002
    assert 0.1 <= summary["p99_s"] <= 0.2


def test_histogram_quantile_ordering():
    hist = Histogram("lat")
    for i in range(100):
        hist.observe(1e-6 * (i + 1))
    assert hist.quantile(0.5) <= hist.quantile(0.9) <= hist.quantile(0.99)


def test_histogram_extremes():
    hist = Histogram("lat")
    hist.observe(0.0)  # below the smallest bound
    hist.observe(1e9)  # beyond the largest bound
    assert hist.count == 2
    assert hist.max == 1e9


def test_snapshot_is_json_safe():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(0.01)
    encoded = json.dumps(registry.snapshot())
    assert "histograms" in encoded
