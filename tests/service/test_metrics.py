"""The metrics registry: counters, gauges, log-bucketed histograms,
and the Prometheus plaintext exposition."""

import json

from repro.service.metrics import (
    Histogram,
    MetricsRegistry,
    escape_label_value,
    merge_expositions,
    prometheus_name,
    relabel_exposition,
)


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.counter("bytes").inc(10)
    registry.counter("bytes").inc(5)
    assert registry.snapshot()["counters"]["bytes"] == 15


def test_gauge_overwrites():
    registry = MetricsRegistry()
    registry.gauge("depth").set(7)
    registry.gauge("depth").set(3)
    assert registry.snapshot()["gauges"]["depth"] == 3


def test_instruments_created_on_first_touch():
    registry = MetricsRegistry()
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    registry.histogram("lat")
    assert registry.snapshot()["histograms"]["lat"]["count"] == 0


def test_histogram_summary():
    hist = Histogram("lat")
    for seconds in (0.001, 0.001, 0.001, 0.001, 0.1):
        hist.observe(seconds)
    summary = hist.summary()
    assert summary["count"] == 5
    assert summary["sum_s"] == sum((0.001, 0.001, 0.001, 0.001, 0.1))
    assert summary["max_s"] == 0.1
    # Log2 buckets: quantiles are right to within a factor of two.
    assert 0.001 <= summary["p50_s"] <= 0.002
    assert 0.1 <= summary["p99_s"] <= 0.2


def test_histogram_quantile_ordering():
    hist = Histogram("lat")
    for i in range(100):
        hist.observe(1e-6 * (i + 1))
    assert hist.quantile(0.5) <= hist.quantile(0.9) <= hist.quantile(0.99)


def test_histogram_extremes():
    hist = Histogram("lat")
    hist.observe(0.0)  # below the smallest bound
    hist.observe(1e9)  # beyond the largest bound
    assert hist.count == 2
    assert hist.max == 1e9


def test_snapshot_is_json_safe():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(0.01)
    encoded = json.dumps(registry.snapshot())
    assert "histograms" in encoded


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_prometheus_name_sanitizes():
    assert prometheus_name("server.rx.bytes") == "repro_server_rx_bytes"
    assert prometheus_name("queue.depth.0") == "repro_queue_depth_0"
    assert prometheus_name("weird name-here!") == "repro_weird_name_here_"
    # A leading digit is invalid in the exposition grammar.
    assert prometheus_name("0day", prefix="") == "_0day"
    assert prometheus_name("ok:colon", prefix="") == "ok:colon"


def test_escape_label_value():
    assert escape_label_value('say "hi"') == 'say \\"hi\\"'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("line1\nline2") == "line1\\nline2"
    # Order matters: the backslash introduced by the quote escape must
    # not itself be re-escaped.
    assert escape_label_value('\\"') == '\\\\\\"'


def test_render_counters_and_gauges():
    registry = MetricsRegistry()
    registry.counter("rx.bytes").inc(42)
    registry.gauge("queue.depth.1").set(3)
    text = registry.render_prometheus()
    assert "# TYPE repro_rx_bytes counter\nrepro_rx_bytes 42" in text
    assert "# TYPE repro_queue_depth_1 gauge\nrepro_queue_depth_1 3" in text
    assert text.endswith("\n")


def test_render_histogram_bucket_cumulative_semantics():
    """le buckets are cumulative, +Inf equals _count, _sum is the
    total of observations."""
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    # Three observations into the 2e-6 bucket's range and one huge
    # outlier beyond every bound.
    for value in (1.5e-6, 1.6e-6, 1.9e-6, 1e9):
        hist.observe(value)
    text = registry.render_prometheus()
    lines = [ln for ln in text.splitlines() if ln.startswith("repro_lat")]
    bucket_counts = []
    for line in lines:
        if "_bucket" in line:
            bucket_counts.append(int(line.rsplit(" ", 1)[1]))
    # Cumulative: monotonically nondecreasing across buckets.
    assert bucket_counts == sorted(bucket_counts)
    # The 1e-6 bucket holds nothing; every bucket from 2e-6 on sees 3.
    assert bucket_counts[0] == 0
    assert bucket_counts[1] == 3
    # +Inf equals the histogram count (the outlier only shows there).
    assert 'repro_lat_bucket{le="+Inf"} 4' in text
    assert "repro_lat_count 4" in text
    assert "repro_lat_sum 1e+09" in text


def test_render_histogram_empty():
    registry = MetricsRegistry()
    registry.histogram("idle")
    text = registry.render_prometheus()
    assert 'repro_idle_bucket{le="+Inf"} 0' in text
    assert "repro_idle_count 0" in text


# ----------------------------------------------------------------------
# custom bucket bounds (batch sizes, skip ratios)
# ----------------------------------------------------------------------
def test_histogram_custom_bounds():
    hist = Histogram("batch.size", bounds=(1.0, 2.0, 4.0, 8.0))
    assert hist.bounds == (1.0, 2.0, 4.0, 8.0)
    for size in (1, 2, 3, 7, 100):
        hist.observe(size)
    # counts: <=1, <=2, <=4, <=8, overflow
    assert hist.counts == [1, 1, 1, 1, 1]
    assert hist.quantile(0.5) == 4.0
    assert hist.summary()["count"] == 5


def test_histogram_bounds_fixed_on_first_creation():
    registry = MetricsRegistry()
    first = registry.histogram("batch.size", bounds=(1.0, 8.0))
    again = registry.histogram("batch.size", bounds=(2.0, 4.0, 16.0))
    assert again is first
    assert again.bounds == (1.0, 8.0)


def test_render_histogram_custom_bounds():
    registry = MetricsRegistry()
    hist = registry.histogram("skip.ratio", bounds=(0.5, 1.0))
    hist.observe(0.25)
    hist.observe(0.75)
    text = registry.render_prometheus()
    assert 'repro_skip_ratio_bucket{le="0.5"} 1' in text
    assert 'repro_skip_ratio_bucket{le="1"} 2' in text
    assert 'repro_skip_ratio_bucket{le="+Inf"} 2' in text


def test_service_batch_and_skip_instruments():
    """The service-layer bounds register usable instruments: batch
    sizes land in power-of-two buckets, skip ratios in tenths."""
    from repro.service.service import BATCH_SIZE_BOUNDS, SKIP_RATIO_BOUNDS

    registry = MetricsRegistry()
    batch = registry.histogram("batch.size", bounds=BATCH_SIZE_BOUNDS)
    for flows in (1, 2, 8, 32, 300):
        batch.observe(flows)
    skip = registry.histogram("vector.skip_ratio", bounds=SKIP_RATIO_BOUNDS)
    skip.observe(0.0)
    skip.observe(0.97)
    snapshot = registry.snapshot()
    assert snapshot["histograms"]["batch.size"]["count"] == 5
    assert snapshot["histograms"]["batch.size"]["max_s"] == 300
    assert snapshot["histograms"]["vector.skip_ratio"]["p99_s"] == 1.0
    text = registry.render_prometheus()
    assert 'repro_batch_size_bucket{le="8"} 3' in text


# ----------------------------------------------------------------------
# exposition merging (the proxy's aggregated /metrics)
# ----------------------------------------------------------------------
def test_relabel_injects_labels_into_every_sample():
    registry = MetricsRegistry()
    registry.counter("rx.frames").inc(3)
    hist = registry.histogram("lat", bounds=(0.5,))
    hist.observe(0.1)
    text = relabel_exposition(
        registry.render_prometheus(), {"backend": "10.0.0.1:9431"}
    )
    assert 'repro_rx_frames{backend="10.0.0.1:9431"} 3' in text
    # Existing le labels are preserved, new labels appended.
    assert (
        'repro_lat_bucket{le="0.5",backend="10.0.0.1:9431"} 1' in text
    )
    assert 'repro_lat_count{backend="10.0.0.1:9431"} 1' in text
    # Comments pass through untouched.
    assert "# TYPE repro_rx_frames counter" in text


def test_relabel_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    text = relabel_exposition(
        registry.render_prometheus(), {"name": 'a"b\\c'}
    )
    assert 'name="a\\"b\\\\c"' in text


def test_merge_expositions_regroups_per_metric():
    """Two backends exposing the same metric merge into ONE block —
    a single # TYPE comment with both labeled samples under it, as
    the exposition format requires."""
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("rx.frames").inc(1)
    a.counter("only.a").inc(7)
    b.counter("rx.frames").inc(2)
    merged = merge_expositions(
        [
            ({"backend": "a:1"}, a.render_prometheus()),
            ({"backend": "b:2"}, b.render_prometheus()),
        ]
    )
    lines = merged.splitlines()
    assert lines.count("# TYPE repro_rx_frames counter") == 1
    type_at = lines.index("# TYPE repro_rx_frames counter")
    # Both samples sit directly under the one TYPE line.
    group = lines[type_at + 1 : type_at + 3]
    assert 'repro_rx_frames{backend="a:1"} 1' in group
    assert 'repro_rx_frames{backend="b:2"} 2' in group
    assert 'repro_only_a{backend="a:1"} 7' in merged


def test_merge_expositions_unlabeled_part_passes_through():
    own = MetricsRegistry()
    own.gauge("backends.healthy").set(2)
    merged = merge_expositions([({}, own.render_prometheus())])
    assert "repro_backends_healthy 2" in merged
