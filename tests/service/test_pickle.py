"""Compiled engines cross process boundaries as compact rebuild specs.

``CompiledTagger``/``ScanPlan``/``BehavioralTagger`` pickle via
``__reduce__`` into (constructor, spec) pairs — grammar plus options,
never the materialized tables — and rebuild through the shared plan
caches on the far side. The service ships specs to workers this way,
so the contract under test is: events tagged by the rebuilt engine are
equal to the original's, including across a *spawn* boundary (fresh
interpreter, nothing inherited).
"""

import multiprocessing as mp
import pickle

import pytest

from repro.core.compiled import CompiledTagger
from repro.core.scanplan import build_scan_plan
from repro.core.tagger import BehavioralTagger
from repro.core.wiring import WiringOptions
from repro.grammar.examples import if_then_else, xmlrpc

STREAM = (
    b"<methodCall><methodName>buy</methodName>"
    b"<params><param><i4>17</i4></param></params></methodCall> "
    b"<methodCall><methodName>nosuch</methodName>"
    b"<params></params></methodCall> "
)


def test_compiled_tagger_pickle_roundtrip():
    tagger = CompiledTagger(xmlrpc())
    clone = pickle.loads(pickle.dumps(tagger))
    assert clone.events(STREAM) == tagger.events(STREAM)


def test_pickle_payload_is_compact():
    """The pickle must be a rebuild spec, not the materialized tables:
    tagging first (which lazily fills the transition tables) must not
    grow the payload."""
    tagger = CompiledTagger(xmlrpc())
    before = len(pickle.dumps(tagger))
    tagger.events(STREAM)  # materialize lazy tables
    after = len(pickle.dumps(tagger))
    assert after == before


def test_scan_plan_pickle_roundtrip():
    grammar = if_then_else()
    plan = build_scan_plan(grammar, WiringOptions())
    clone = pickle.loads(pickle.dumps(plan))
    data = b"if true then go else stop"
    assert CompiledTagger(grammar).events(data)
    assert clone.grammar.name == plan.grammar.name


def test_behavioral_tagger_pickle_roundtrip():
    tagger = BehavioralTagger(xmlrpc())
    clone = pickle.loads(pickle.dumps(tagger))
    assert clone.tag(STREAM) == tagger.tag(STREAM)
    interpreted = BehavioralTagger(xmlrpc(), engine="interpreted")
    clone = pickle.loads(pickle.dumps(interpreted))
    assert clone.engine == "interpreted"
    assert clone.tag(STREAM) == interpreted.tag(STREAM)


def _tag_remote(tagger: CompiledTagger, data: bytes, out) -> None:
    out.put(tagger.events(data))


def test_compiled_tagger_across_spawn_boundary():
    """Full process-boundary round trip with nothing inherited: a
    *spawn* child unpickles the tagger, rebuilds the tables from the
    spec, tags, and ships the events back — equal on both sides."""
    if "spawn" not in mp.get_all_start_methods():  # pragma: no cover
        pytest.skip("no spawn start method on this platform")
    ctx = mp.get_context("spawn")
    tagger = CompiledTagger(xmlrpc())
    local = tagger.events(STREAM)
    out = ctx.Queue()
    child = ctx.Process(target=_tag_remote, args=(tagger, STREAM, out))
    child.start()
    try:
        remote = out.get(timeout=60)
    finally:
        child.join(10)
    assert remote == local
