"""ScanService semantics: equality with the single-process router,
chunk-split invariance, backpressure, crash recovery, lifecycle."""

import os
import time

import pytest

from repro.apps.xmlrpc import ContentBasedRouter, WorkloadGenerator
from repro.grammar.examples import xmlrpc
from repro.service import (
    QueueFull,
    RouterSpec,
    ScanService,
    ServiceClosed,
    ServiceError,
    TaggerSpec,
    WorkerCrashed,
)


@pytest.fixture(scope="module")
def streams():
    """Six flows of a few messages each, deterministic."""
    generator = WorkloadGenerator(seed=7)
    out = {}
    for index in range(6):
        data, _truth = generator.stream(5)
        out[f"flow-{index}"] = data
    return out


@pytest.fixture(scope="module")
def expected(streams):
    router = ContentBasedRouter()
    return {flow: router.route(data) for flow, data in streams.items()}


def chunked(data: bytes, size: int) -> list[bytes]:
    return [data[i : i + size] for i in range(0, len(data), size)]


# ----------------------------------------------------------------------
def test_sharded_equals_single_process(streams, expected):
    """The acceptance invariant: per-flow results from the 2-worker
    pool are byte-for-byte what ContentBasedRouter.route produces."""
    with ScanService(RouterSpec(), n_workers=2) as service:
        got = service.run_streams(streams, chunk_size=512)
    assert got == expected


def test_chunk_split_invariance(streams, expected):
    """Chunk boundaries are arbitrary: every split of the same flow
    bytes merges to the same results through the sharded service."""
    flow = "flow-0"
    data = streams[flow]
    for size in (1 + len(data) // 3, 64, 7):
        with ScanService(RouterSpec(), n_workers=2) as service:
            for chunk in chunked(data, size):
                service.submit(flow, chunk)
            service.finish_flow(flow)
            service.drain()
            assert service.results()[flow] == expected[flow]


def test_interleaved_submission_preserves_flow_order(streams, expected):
    """Round-robin interleaving across flows must not reorder any one
    flow's results (hash sharding + per-worker FIFO)."""
    with ScanService(RouterSpec(), n_workers=3) as service:
        pieces = {f: chunked(d, 256) for f, d in streams.items()}
        round_index = 0
        while any(pieces.values()):
            for flow in list(pieces):
                if round_index < len(pieces[flow]):
                    service.submit(flow, pieces[flow][round_index])
            round_index += 1
            if round_index >= max(len(p) for p in pieces.values()):
                break
        for flow, chunks in pieces.items():
            for chunk in chunks[round_index:]:
                service.submit(flow, chunk)
            service.finish_flow(flow)
        service.drain()
        assert service.results() == expected


def test_tagger_spec_raw_events(streams):
    """TaggerSpec workers return raw DetectEvents equal to a local
    CompiledTagger scan."""
    from repro.core.compiled import CompiledTagger

    data = streams["flow-1"]
    local = CompiledTagger(xmlrpc()).events(data)
    with ScanService(TaggerSpec(xmlrpc()), n_workers=2) as service:
        got = service.run_streams({"f": data}, chunk_size=333)
    assert got["f"] == local


# ----------------------------------------------------------------------
def test_backpressure_raise_policy(streams):
    """With backpressure="raise" a full bounded queue raises QueueFull
    instead of blocking; the journal stays consistent (the rejected
    chunk is not replayed later)."""
    data = streams["flow-2"]
    with ScanService(
        RouterSpec(), n_workers=1, queue_depth=1, backpressure="raise"
    ) as service:
        rejected = 0
        for _ in range(200):
            try:
                service.submit("slow-flow", data)
            except QueueFull as exc:
                rejected += 1
                assert exc.worker == 0
        assert rejected > 0
        while True:
            try:
                service.finish_flow("slow-flow")
                break
            except QueueFull:
                time.sleep(0.01)
        service.drain()
        accepted = 200 - rejected
        expected = ContentBasedRouter().route(data * accepted)
        assert service.results()["slow-flow"] == expected
        assert (
            service.stats()["counters"]["errors.queue_full"] >= rejected
        )


def test_block_policy_timeout(streams):
    """backpressure="block" with a timeout raises QueueFull once the
    deadline passes rather than waiting forever."""
    big = streams["flow-3"] * 1000  # keeps the one worker busy a while
    with ScanService(RouterSpec(), n_workers=1, queue_depth=1) as service:
        service.submit("f", big)
        service.submit("f", b" ")  # fills the bounded queue
        with pytest.raises(QueueFull):
            service.submit("f", b" ", timeout=0.05)
        service.drain(timeout=300)


# ----------------------------------------------------------------------
def test_crash_respawn_and_replay(streams, expected):
    """Kill a worker mid-stream: the supervisor respawns it, replays
    the journaled chunks, and the merged results are still exactly the
    single-process answer (no duplicates, no holes)."""
    flow = "flow-4"
    chunks = chunked(streams[flow], 300)
    half = len(chunks) // 2
    with ScanService(RouterSpec(), n_workers=2) as service:
        for chunk in chunks[:half]:
            service.submit(flow, chunk)
        service.drain()
        service._inject_crash(service.shards.worker_of(flow))
        for chunk in chunks[half:]:
            service.submit(flow, chunk)
        service.finish_flow(flow)
        service.drain()
        assert service.results()[flow] == expected[flow]
        stats = service.stats()
        assert sum(stats["workers"]["respawns"]) >= 1
        assert stats["counters"]["replayed.tasks"] >= 1


def test_respawn_limit_raises(streams):
    flow = "flow-5"
    with ScanService(RouterSpec(), n_workers=1, respawn_limit=1) as service:
        service.submit(flow, streams[flow][:100])
        service.drain()
        with pytest.raises(WorkerCrashed):
            for _ in range(4):
                service._inject_crash(0)
                service.submit(flow, b"x")
                service.drain()
        # The pool is beyond recovery; a draining close would re-raise.
        service.close(drain=False)


# ----------------------------------------------------------------------
def test_closed_service_rejects_work(streams):
    service = ScanService(RouterSpec(), n_workers=1)
    service.close()
    with pytest.raises(ServiceClosed):
        service.submit("f", b"x")
    service.close()  # idempotent


def test_context_manager_drains(streams, expected):
    flow = "flow-0"
    with ScanService(RouterSpec(), n_workers=2) as service:
        for chunk in chunked(streams[flow], 400):
            service.submit(flow, chunk)
        service.finish_flow(flow)
    # __exit__ drained before stopping the workers.
    assert service.results()[flow] == expected[flow]


def test_pop_results_hands_over(streams, expected):
    flow = "flow-1"
    with ScanService(RouterSpec(), n_workers=2) as service:
        service.submit(flow, streams[flow])
        service.finish_flow(flow)
        service.drain()
        first = service.pop_results()
        assert first[flow] == expected[flow]
        assert service.results() == {}


def test_peek_is_nondestructive(streams, expected):
    """peek() evaluates end-of-data on a worker-side snapshot; the flow
    keeps accepting chunks afterwards."""
    flow = "flow-2"
    data = streams[flow]
    cut = len(data) * 2 // 3
    with ScanService(RouterSpec(), n_workers=2) as service:
        service.submit(flow, data[:cut])
        peeked = service.peek(flow)
        assert isinstance(peeked, list)
        service.submit(flow, data[cut:])
        service.finish_flow(flow)
        service.drain()
        assert service.results()[flow] == expected[flow]


def test_invalid_options():
    with pytest.raises(ServiceError):
        ScanService(RouterSpec(), n_workers=0)
    with pytest.raises(ServiceError):
        ScanService(RouterSpec(), backpressure="shed")


def test_stats_shape(streams):
    with ScanService(RouterSpec(), n_workers=2) as service:
        service.submit("f", streams["flow-0"][:200])
        service.drain()
        stats = service.stats()
    assert stats["counters"]["submitted.chunks"] == 1
    assert stats["counters"]["submitted.bytes"] == 200
    assert stats["workers"]["count"] == 2
    assert "latency.roundtrip_s" in stats["histograms"]
    assert "queue.depth.0" in stats["gauges"]
    assert "queue.depth.1" in stats["gauges"]


# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not os.environ.get("RUN_SERVICE_SMOKE"),
    reason="heavy smoke test; set RUN_SERVICE_SMOKE=1 (CI gated suite)",
)
def test_service_smoke_1k_messages():
    """Gated smoke: 2-worker pool, 1000 messages across 10 flows,
    asserts a clean drain and zero lost events vs the single-process
    router."""
    generator = WorkloadGenerator(seed=1000)
    streams = {}
    for index in range(10):
        data, _truth = generator.stream(100)
        streams[f"smoke-{index}"] = data
    router = ContentBasedRouter()
    expected = {f: router.route(d) for f, d in streams.items()}
    n_messages = sum(len(v) for v in expected.values())
    assert n_messages == 1000
    with ScanService(RouterSpec(), n_workers=2) as service:
        got = service.run_streams(streams, chunk_size=2048)
        stats = service.stats()
    assert got == expected
    assert stats["gauges"]["inflight"] == 0
    assert stats["counters"]["results.items"] == n_messages
