"""Flow-to-worker sharding: stable, total, and reasonably balanced."""

import subprocess
import sys

from repro.apps.netstack.flows import FlowKey
from repro.service.shard import ShardRouter, shard_of


def test_shard_in_range():
    for n in (1, 2, 3, 8):
        for flow in ("a", "flow-17", 42, ("10.0.0.1", 80)):
            assert 0 <= shard_of(flow, n) < n


def test_shard_deterministic_within_process():
    assert all(
        shard_of("flow-9", 4) == shard_of("flow-9", 4) for _ in range(10)
    )


def test_shard_stable_across_processes():
    """The mapping must survive process boundaries (PYTHONHASHSEED
    randomizes builtin ``hash``; the shard router must not use it)."""
    flows = [f"flow-{i}" for i in range(16)]
    here = [shard_of(flow, 4) for flow in flows]
    code = (
        "from repro.service.shard import shard_of;"
        f"print([shard_of(f, 4) for f in {flows!r}])"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    assert eval(out.stdout.strip()) == here


def test_shard_spreads_flows():
    """Hashing should not collapse a realistic flow population onto a
    single worker."""
    workers = {shard_of(f"flow-{i}", 4) for i in range(64)}
    assert workers == {0, 1, 2, 3}


def test_flowkey_shards_stably():
    key = FlowKey(
        src_ip="10.0.0.1", src_port=1234, dst_ip="10.0.0.2", dst_port=80
    )
    same = FlowKey(
        src_ip="10.0.0.1", src_port=1234, dst_ip="10.0.0.2", dst_port=80
    )
    assert shard_of(key, 8) == shard_of(same, 8)


def test_partition():
    router = ShardRouter(3)
    flows = [f"flow-{i}" for i in range(30)]
    parts = router.partition(flows)
    assert len(parts) == 3
    assert sorted(sum(parts, [])) == sorted(flows)
    for worker, members in enumerate(parts):
        assert all(router.worker_of(flow) == worker for flow in members)
