"""Nullable/First/Follow (Fig. 8) and the occurrence graph.

The centerpiece asserts the paper's Fig. 10 Follow-set table verbatim.
"""

import pytest

from repro.grammar.analysis import (
    analyze_grammar,
    build_occurrence_graph,
)
from repro.grammar.cfg import Grammar
from repro.grammar.lexspec import LexSpec
from repro.grammar.symbols import END, NonTerminal, Terminal
from repro.grammar.yacc_parser import parse_yacc_grammar


def T(name):
    return Terminal(name)


class TestFig10:
    """The exact Follow-set table of the paper's Fig. 10."""

    def test_follow_sets_match_paper(self, ite_grammar):
        analysis = analyze_grammar(ite_grammar)
        follow = analysis.token_follow_table()
        expected = {
            "if": {"true", "false"},
            "then": {"if", "go", "stop"},
            "else": {"if", "go", "stop"},
            "go": {"else", "$end"},     # paper writes ε for end
            "stop": {"else", "$end"},
            "true": {"then"},
            "false": {"then"},
        }
        assert {
            t.name: {f.name for f in fs} for t, fs in follow.items()
        } == expected

    def test_start_terminals_is_first_of_start(self, ite_grammar):
        analysis = analyze_grammar(ite_grammar)
        assert {t.name for t in analysis.start_terminals} == {
            "if",
            "go",
            "stop",
        }

    def test_describe_follow_renders_epsilon(self, ite_grammar):
        text = analyze_grammar(ite_grammar).describe_follow()
        assert "ε" in text
        assert "go" in text


class TestFig8Algorithm:
    def test_nullable_propagates(self):
        g = parse_yacc_grammar(
            """
            %%
            s: a b "x";
            a: | "y";
            b: | a;
            %%
            """
        )
        analysis = analyze_grammar(g)
        assert analysis.nullable[NonTerminal("a")]
        assert analysis.nullable[NonTerminal("b")]
        assert not analysis.nullable[NonTerminal("s")]

    def test_first_through_nullable_prefix(self):
        g = parse_yacc_grammar(
            """
            %%
            s: a "x";
            a: | "y";
            %%
            """
        )
        analysis = analyze_grammar(g)
        assert {t.name for t in analysis.first[NonTerminal("s")]} == {"y", "x"}

    def test_follow_through_nullable_suffix(self):
        g = parse_yacc_grammar(
            """
            %%
            s: "a" b c "d";
            b: "b";
            c: | "c";
            %%
            """
        )
        analysis = analyze_grammar(g)
        # c is nullable, so FOLLOW(b) includes both FIRST(c) and "d".
        assert {t.name for t in analysis.follow[T("b")]} == {"c", "d"}

    def test_end_marker_only_at_sentence_end(self, xmlrpc_grammar):
        analysis = analyze_grammar(xmlrpc_grammar)
        enders = {
            t.name
            for t in xmlrpc_grammar.used_terminals()
            if END in analysis.follow[t]
        }
        assert enders == {"</methodCall>"}

    def test_balanced_parens_follow(self, parens_grammar):
        analysis = analyze_grammar(parens_grammar)
        follow = {
            t.name: {f.name for f in fs}
            for t, fs in analysis.token_follow_table().items()
        }
        assert follow["("] == {"(", "0"}
        assert follow["0"] == {")", "$end"}
        assert follow[")"] == {")", "$end"}

    def test_sequence_helpers(self, ite_grammar):
        analysis = analyze_grammar(ite_grammar)
        E, C = NonTerminal("E"), NonTerminal("C")
        assert analysis.first_of_sequence((C, E)) == analysis.first[C]
        assert not analysis.sequence_nullable((E,))
        assert analysis.sequence_nullable(())


class TestOccurrenceGraph:
    def test_every_terminal_occurrence_is_a_node(self, ite_grammar):
        graph = build_occurrence_graph(ite_grammar)
        # Fig. 9: E -> if C then E else E | go | stop ; C -> true|false
        # terminal occurrences: if, then, else, go, stop, true, false.
        assert len(graph.occurrences) == 7

    def test_collapsed_edges_equal_follow_table(self, ite_grammar):
        """Collapsing occurrences must reproduce the Fig. 10 wiring."""
        analysis = analyze_grammar(ite_grammar)
        graph = build_occurrence_graph(ite_grammar, analysis)
        collapsed = graph.collapsed_edges()
        for terminal, follows in analysis.token_follow_table().items():
            expected = {t for t in follows if t != END}
            assert collapsed.get(terminal, frozenset()) == expected

    def test_collapsed_edges_equal_follow_table_xmlrpc(self, xmlrpc_grammar):
        analysis = analyze_grammar(xmlrpc_grammar)
        graph = build_occurrence_graph(xmlrpc_grammar, analysis)
        collapsed = graph.collapsed_edges()
        for terminal, follows in analysis.token_follow_table().items():
            expected = {t for t in follows if t != END}
            assert collapsed.get(terminal, frozenset()) == expected

    def test_starts_and_accepting(self, ite_grammar):
        graph = build_occurrence_graph(ite_grammar)
        assert {o.terminal.name for o in graph.starts} == {"if", "go", "stop"}
        assert {o.terminal.name for o in graph.accepting} == {"go", "stop"}

    def test_context_duplication_counts(self, xmlrpc_grammar):
        graph = build_occurrence_graph(xmlrpc_grammar)
        counts = graph.contexts_per_terminal()
        # STRING appears in methodName, string and name contexts.
        assert counts[T("STRING")] == 3
        assert counts[T("INT")] == 2  # i4 and int

    def test_edges_respect_contexts(self, xmlrpc_grammar):
        """STRING in the methodName context may only be followed by
        </methodName> — not by the closers of other contexts."""
        graph = build_occurrence_graph(xmlrpc_grammar)
        method_string = next(
            o
            for o in graph.occurrences
            if o.terminal.name == "STRING"
            and xmlrpc_grammar.productions[o.production].lhs.name == "methodName"
        )
        followers = {o.terminal.name for o in graph.edges[method_string]}
        assert followers == {"</methodName>"}

    def test_recursive_grammar_edges(self, parens_grammar):
        graph = build_occurrence_graph(parens_grammar)
        open_paren = next(
            o for o in graph.occurrences if o.terminal.name == "("
        )
        followers = {o.terminal.name for o in graph.edges[open_paren]}
        assert followers == {"(", "0"}

    def test_occurrence_str(self, ite_grammar):
        graph = build_occurrence_graph(ite_grammar)
        texts = {str(o) for o in graph.occurrences}
        assert "if@p0.0" in texts


class TestValidation:
    def test_empty_grammar_rejected(self):
        g = Grammar("empty", LexSpec())
        from repro.errors import GrammarError

        with pytest.raises(GrammarError):
            analyze_grammar(g)

    def test_unreachable_nonterminal_rejected(self):
        from repro.errors import GrammarError

        with pytest.raises(GrammarError, match="unreachable"):
            parse_yacc_grammar(
                """
                %%
                s: "a";
                orphan: "b";
                %%
                """
            )

    def test_undefined_nonterminal_rejected(self):
        from repro.errors import GrammarError

        with pytest.raises(GrammarError, match="never defined"):
            parse_yacc_grammar(
                """
                %%
                s: missing "a";
                %%
                """
            )
