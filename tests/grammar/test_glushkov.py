"""Glushkov position automaton: the basis of the Fig. 6 templates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnsupportedPatternError
from repro.grammar.regex.glushkov import build_glushkov, normalize_repeats
from repro.grammar.regex.nfa import compile_nfa
from repro.grammar.regex.parser import parse_regex


class TestNormalizeRepeats:
    def test_exact_repeat_expands(self):
        node = normalize_repeats(parse_regex("a{3}"))
        assert str(node) == "aaa"

    def test_range_repeat_expands(self):
        node = normalize_repeats(parse_regex("a{1,3}"))
        assert str(node) == "aa?a?"

    def test_open_repeat_expands(self):
        node = normalize_repeats(parse_regex("a{2,}"))
        assert str(node) == "aa+"

    def test_plain_operators_unchanged(self):
        for pattern in ("a?", "a*", "a+"):
            assert str(normalize_repeats(parse_regex(pattern))) == pattern


class TestConstruction:
    def test_string_is_a_chain(self):
        auto = build_glushkov(parse_regex("abc"))
        assert auto.n_positions == 3
        assert auto.first == {0}
        assert auto.last == {2}
        assert auto.follow[0] == {1}
        assert auto.follow[1] == {2}
        assert auto.follow[2] == frozenset()

    def test_plus_self_loop(self):
        auto = build_glushkov(parse_regex("a+"))
        assert auto.follow[0] == {0}
        assert auto.extension_bytes(0) == frozenset(b"a")

    def test_optional_prefix(self):
        auto = build_glushkov(parse_regex("[+-]?[0-9]+"))
        assert auto.first == {0, 1}  # sign or first digit
        assert auto.last == {1}
        assert auto.extension_bytes(1) == frozenset(b"0123456789")

    def test_alternation_parallel_branches(self):
        auto = build_glushkov(parse_regex("ab|cd"))
        assert auto.first == {0, 2}
        assert auto.last == {1, 3}

    def test_nullable_pattern_rejected(self):
        with pytest.raises(UnsupportedPatternError, match="empty"):
            build_glushkov(parse_regex("a*"))

    def test_empty_class_rejected(self):
        with pytest.raises(UnsupportedPatternError):
            build_glushkov(parse_regex("[^\\x00-\\xff]"))


class TestLongestMatch:
    @pytest.mark.parametrize(
        "pattern,data,start,expected",
        [
            ("a+", b"aaab", 0, 3),
            ("abc", b"abcd", 0, 3),
            ("[0-9]+", b"x12", 1, 2),
            ("ab", b"ax", 0, None),
            ("a+b", b"aab", 0, 3),
        ],
    )
    def test_cases(self, pattern, data, start, expected):
        auto = build_glushkov(parse_regex(pattern))
        assert auto.longest_match(data, start) == expected


_atoms = st.sampled_from(["a", "b", "[ab]", "[0-9]", "c"])
_ops = st.sampled_from(["", "+", "?"])


@st.composite
def non_nullable_patterns(draw):
    """Patterns with at least one mandatory position."""
    n = draw(st.integers(1, 4))
    parts = []
    has_required = False
    for _ in range(n):
        atom, op = draw(_atoms), draw(_ops)
        if op != "?":
            has_required = True
        parts.append(atom + op)
    if not has_required:
        parts.append(draw(_atoms))
    return "".join(parts)


@given(
    pattern=non_nullable_patterns(),
    data=st.text(alphabet="ab019c", max_size=10).map(lambda s: s.encode()),
)
@settings(max_examples=250, deadline=None)
def test_glushkov_longest_match_equals_nfa(pattern, data):
    node = parse_regex(pattern)
    auto = build_glushkov(node)
    nfa = compile_nfa(node)
    expected = nfa.longest_match(data, 0)
    if expected == 0:
        expected = None  # Glushkov tokens never match empty
    assert auto.longest_match(data, 0) == expected
