"""Yacc/Lex-style grammar front-end (Fig. 14 format)."""

import pytest

from repro.errors import GrammarSyntaxError
from repro.grammar.symbols import NonTerminal, Terminal
from repro.grammar.yacc_parser import parse_yacc_grammar


class TestTokenSection:
    def test_named_tokens(self):
        g = parse_yacc_grammar("NUM [0-9]+\n%%\ns: NUM;\n")
        assert "NUM" in g.lexspec
        assert not g.lexspec.get("NUM").is_literal

    def test_shared_pattern_names(self):
        g = parse_yacc_grammar(
            "MONTH, DAY        [0-9][0-9]\n%%\ns: MONTH DAY;\n"
        )
        assert g.lexspec.get("MONTH").pattern == g.lexspec.get("DAY").pattern

    def test_dotted_token_names(self):
        g = parse_yacc_grammar("A.B x\n%%\ns: A.B;\n")
        assert "A.B" in g.lexspec

    def test_delim_directive(self):
        g = parse_yacc_grammar("%delim [xy]\n%%\ns: \"a\";\n")
        assert g.lexspec.is_delimiter(ord("x"))
        assert not g.lexspec.is_delimiter(ord(" "))

    def test_start_directive(self):
        g = parse_yacc_grammar(
            """
            %start inner
            %%
            outer: inner;
            inner: "a" outer "b" | "c";
            %%
            """
        )
        assert g.start == NonTerminal("inner")

    def test_bad_pattern_reports_line(self):
        with pytest.raises(GrammarSyntaxError) as info:
            parse_yacc_grammar("BAD [z-a\n%%\ns: BAD;\n")
        assert info.value.line is not None

    def test_bad_start_symbol(self):
        with pytest.raises(GrammarSyntaxError, match="%start"):
            parse_yacc_grammar("%start nothere\n%%\ns: \"a\";\n")


class TestProductionSection:
    def test_quoted_literals_become_tokens(self):
        g = parse_yacc_grammar('%%\ns: "<tag>" "x";\n')
        assert g.lexspec.get("<tag>").is_literal
        assert g.lexspec.get("<tag>").fixed_text() == b"<tag>"

    def test_single_quote_and_backquote_chars(self):
        g = parse_yacc_grammar("%%\ns: 'T' `:';\n")
        names = [t.name for t in g.lexspec]
        assert names == ["T", ":"]

    def test_alternatives_expand_to_productions(self, ite_grammar):
        assert len(ite_grammar.productions) == 5

    def test_epsilon_alternative(self):
        g = parse_yacc_grammar('%%\nlist: | "x" list;\n')
        assert g.productions[0].rhs == ()

    def test_identifier_resolution(self):
        g = parse_yacc_grammar(
            "WORD [a-z]+\n%%\ns: WORD t;\nt: \"end\";\n"
        )
        rhs = g.productions[0].rhs
        assert isinstance(rhs[0], Terminal)
        assert isinstance(rhs[1], NonTerminal)

    def test_comments_stripped(self):
        g = parse_yacc_grammar(
            """
            # a comment
            WORD [a-z]+   // trailing comment
            %%
            s: WORD;  # another
            %%
            """
        )
        assert "WORD" in g.lexspec

    def test_trailer_ignored(self):
        g = parse_yacc_grammar('%%\ns: "a";\n%%\narbitrary trailer ???\n')
        assert len(g.productions) == 1

    def test_first_lhs_is_start(self, xmlrpc_grammar):
        assert xmlrpc_grammar.start == NonTerminal("methodCall")


class TestErrors:
    def test_missing_separator(self):
        with pytest.raises(GrammarSyntaxError, match="%%"):
            parse_yacc_grammar('s: "a";')

    def test_too_many_separators(self):
        with pytest.raises(GrammarSyntaxError, match="too many"):
            parse_yacc_grammar("%%\ns: \"a\";\n%%\n%%\n%%\n")

    def test_missing_colon(self):
        with pytest.raises(GrammarSyntaxError, match="':'"):
            parse_yacc_grammar('%%\ns "a";\n')

    def test_unterminated_rule(self):
        with pytest.raises(GrammarSyntaxError, match="';'"):
            parse_yacc_grammar('%%\ns: "a"\n')

    def test_junk_character(self):
        with pytest.raises(GrammarSyntaxError, match="unexpected"):
            parse_yacc_grammar('%%\ns: "a" @ "b";\n')


class TestLoadFromDisk:
    def test_load_yacc_grammar(self, tmp_path):
        from repro.grammar.yacc_parser import load_yacc_grammar

        path = tmp_path / "toy.y"
        path.write_text('%%\ns: "hello";\n')
        g = load_yacc_grammar(str(path), name="toy")
        assert g.name == "toy"
        assert len(g.productions) == 1
