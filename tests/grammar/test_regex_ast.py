"""Regex AST structural queries used by the generator."""

import pytest

from repro.grammar.regex import ast as rx
from repro.grammar.regex.parser import parse_regex


class TestConstructors:
    def test_literal_string(self):
        node = rx.literal_string("go")
        assert rx.fixed_string(node) == b"go"
        assert rx.literal_string("") == rx.Empty()
        assert rx.literal_string("x") == rx.Literal(ord("x"))

    def test_seq_flattens(self):
        node = rx.seq(rx.literal_string("ab"), rx.Empty(), rx.literal_string("c"))
        assert rx.fixed_string(node) == b"abc"

    def test_alt_dedupes(self):
        a = rx.Literal(97)
        assert rx.alt(a, a) == a

    def test_alt_requires_option(self):
        with pytest.raises(ValueError):
            rx.alt()

    def test_char_class_ranges(self):
        cls = rx.char_class("x", ranges=(("0", "2"),))
        assert cls.matched_bytes() == frozenset(b"x012")

    def test_nocase(self):
        cls = rx.nocase("A")
        assert cls.matched_bytes() == frozenset(b"aA")

    def test_predecoded_terms_match_fig5(self):
        assert len(rx.ALPHA.matched_bytes()) == 52
        assert len(rx.ALNUM.matched_bytes()) == 62
        assert len(rx.DIGIT.matched_bytes()) == 10
        assert rx.WHITESPACE.contains(ord(" "))


class TestNullable:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("a", False),
            ("a?", True),
            ("a*", True),
            ("a+", False),
            ("a|b?", True),
            ("a?b", False),
            ("a?b?", True),
        ],
    )
    def test_nullable(self, pattern, expected):
        assert rx.nullable(parse_regex(pattern)) is expected


class TestFirstBytes:
    def test_sequence_skips_nullable_prefix(self):
        node = parse_regex("[+-]?[0-9]+")
        first = rx.first_bytes(node)
        assert first == frozenset(b"+-0123456789")

    def test_alt_union(self):
        assert rx.first_bytes(parse_regex("a|b")) == frozenset(b"ab")

    def test_stops_at_first_required(self):
        assert rx.first_bytes(parse_regex("ab")) == frozenset(b"a")


class TestFixedString:
    def test_variable_patterns_are_none(self):
        assert rx.fixed_string(parse_regex("[0-9]+")) is None
        assert rx.fixed_string(parse_regex("ab?")) is None

    def test_exact_repeat(self):
        assert rx.fixed_string(parse_regex("a{3}")) == b"aaa"

    def test_singleton_class(self):
        assert rx.fixed_string(parse_regex("[a]")) == b"a"


class TestPatternByteCount:
    """The Table 1 '# of Bytes' metric."""

    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("abc", 3),
            ("[a-zA-Z0-9]+", 1),
            ("[+-]?[0-9]+", 2),
            ("[0-9][0-9][0-9][0-9]", 4),
            ("a|bc", 3),
            ("x{4}", 4),
        ],
    )
    def test_counts(self, pattern, expected):
        assert rx.pattern_byte_count(parse_regex(pattern)) == expected

    def test_fig14_grammar_is_about_300_bytes(self, xmlrpc_grammar):
        total = xmlrpc_grammar.lexspec.total_pattern_bytes()
        assert 270 <= total <= 310  # the paper says "approximately 300"


class TestReverse:
    @pytest.mark.parametrize(
        "pattern,matches,rejected",
        [
            ("abc", b"cba", b"abc"),
            ("ab+", b"bba", b"abb"),
            ("[0-9]+x", b"x12", b"12x"),
        ],
    )
    def test_reverse_semantics(self, pattern, matches, rejected):
        from repro.grammar.regex.nfa import compile_nfa

        reversed_nfa = compile_nfa(rx.reverse(parse_regex(pattern)))
        assert reversed_nfa.matches(matches)
        assert not reversed_nfa.matches(rejected) or matches == rejected

    def test_reverse_involution(self):
        node = parse_regex("(ab|c)+x?")
        assert rx.reverse(rx.reverse(node)) == node


class TestAlphabet:
    def test_collects_all_bytes(self):
        node = parse_regex("a[0-1]c?")
        assert rx.alphabet(node) == frozenset(b"a01c")
