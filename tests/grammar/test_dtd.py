"""DTD parsing and DTD → BNF conversion (Fig. 13 → Fig. 14)."""

import pytest

from repro.errors import DTDSyntaxError
from repro.grammar.dtd import (
    ContentChoice,
    ContentRepeat,
    ContentSeq,
    ElementRef,
    PCData,
    dtd_to_grammar,
    parse_dtd,
)
from repro.grammar.examples import (
    XMLRPC_DTD,
    XMLRPC_PCDATA_PATTERNS,
    xmlrpc_from_dtd,
)
from repro.grammar.symbols import NonTerminal


class TestParseDTD:
    def test_sequence(self):
        decls = parse_dtd("<!ELEMENT a (b, c)>\n<!ELEMENT b (#PCDATA)>"
                          "\n<!ELEMENT c (#PCDATA)>")
        assert isinstance(decls["a"], ContentSeq)
        assert [str(i) for i in decls["a"].items] == ["b", "c"]

    def test_choice(self):
        decls = parse_dtd("<!ELEMENT a (b | c)>\n<!ELEMENT b (#PCDATA)>"
                          "\n<!ELEMENT c (#PCDATA)>")
        assert isinstance(decls["a"], ContentChoice)

    def test_repetitions(self):
        decls = parse_dtd(
            "<!ELEMENT a (b*)>\n<!ELEMENT b (c+)>\n<!ELEMENT c (d?)>"
            "\n<!ELEMENT d (#PCDATA)>"
        )
        assert isinstance(decls["a"], ContentRepeat)
        assert decls["a"].operator == "*"
        assert decls["b"].operator == "+"
        assert decls["c"].operator == "?"

    def test_pcdata(self):
        decls = parse_dtd("<!ELEMENT note (#PCDATA)>")
        assert isinstance(decls["note"], PCData)

    def test_comments_ignored(self):
        decls = parse_dtd(
            "<!-- preamble -->\n<!ELEMENT a (#PCDATA)>\n<!-- end -->"
        )
        assert list(decls) == ["a"]

    def test_mixed_separators_rejected(self):
        with pytest.raises(DTDSyntaxError, match="mix"):
            parse_dtd("<!ELEMENT a (b, c | d)>")

    def test_duplicate_element_rejected(self):
        with pytest.raises(DTDSyntaxError, match="twice"):
            parse_dtd("<!ELEMENT a (#PCDATA)>\n<!ELEMENT a (#PCDATA)>")

    def test_empty_dtd_rejected(self):
        with pytest.raises(DTDSyntaxError, match="no <!ELEMENT"):
            parse_dtd("just text")

    def test_fig13_parses_completely(self):
        decls = parse_dtd(XMLRPC_DTD)
        assert len(decls) == 16
        assert "dateTime.iso8601" in decls


class TestConversion:
    def test_element_wrapped_in_tags(self):
        g = dtd_to_grammar("<!ELEMENT note (#PCDATA)>")
        production = g.productions[0]
        assert [s.name for s in production.rhs] == [
            "<note>",
            "STRING",
            "</note>",
        ]

    def test_star_makes_epsilon_list(self):
        g = dtd_to_grammar(
            "<!ELEMENT a (b*)>\n<!ELEMENT b (#PCDATA)>"
        )
        helpers = [p for p in g.productions if "_rep" in p.lhs.name]
        assert any(p.rhs == () for p in helpers)
        assert any(len(p.rhs) == 2 for p in helpers)

    def test_plus_requires_one(self):
        g = dtd_to_grammar("<!ELEMENT a (b+)>\n<!ELEMENT b (#PCDATA)>")
        from repro.grammar.analysis import analyze_grammar

        analysis = analyze_grammar(g)
        helper = next(
            p.lhs for p in g.productions if p.lhs.name.startswith("a_rep")
        )
        assert not analysis.nullable[helper]

    def test_pcdata_override(self):
        g = dtd_to_grammar(
            "<!ELEMENT n (#PCDATA)>",
            pcdata_patterns={"n": ("NUM", "[0-9]+")},
        )
        assert "NUM" in g.lexspec

    def test_conflicting_override_rejected(self):
        with pytest.raises(DTDSyntaxError, match="two patterns"):
            dtd_to_grammar(
                "<!ELEMENT a (b, c)>\n<!ELEMENT b (#PCDATA)>"
                "\n<!ELEMENT c (#PCDATA)>",
                pcdata_patterns={
                    "b": ("X", "[0-9]+"),
                    "c": ("X", "[a-z]+"),
                },
            )

    def test_undeclared_reference_rejected(self):
        with pytest.raises(DTDSyntaxError, match="not declared"):
            dtd_to_grammar("<!ELEMENT a (ghost)>")

    def test_bad_root_rejected(self):
        with pytest.raises(DTDSyntaxError, match="root"):
            dtd_to_grammar("<!ELEMENT a (#PCDATA)>", root="b")


class TestXmlRpcConversion:
    def test_converts_and_validates(self):
        g = xmlrpc_from_dtd()
        assert g.start == NonTerminal("methodCall")
        g.validate()

    def test_same_tag_tokens_as_fig14(self, xmlrpc_grammar):
        generated = xmlrpc_from_dtd()
        fig14_tags = {
            t.name for t in xmlrpc_grammar.lexspec if t.name.startswith("<")
        }
        generated_tags = {
            t.name for t in generated.lexspec if t.name.startswith("<")
        }
        # Fig. 14 drops the <value>/<data> wrappers in places; the DTD
        # conversion keeps them, so Fig. 14's tags are a subset.
        assert fig14_tags - {"<data>", "</data>"} <= generated_tags | {
            "<dateTime.iso8601>",
            "</dateTime.iso8601>",
        }

    def test_generated_grammar_is_taggable(self):
        """The converted grammar drives the tagger end to end."""
        from repro.core.tagger import BehavioralTagger

        g = xmlrpc_from_dtd()
        message = (
            b"<methodCall><methodName>buy</methodName><params>"
            b"<param><value><i4>5</i4></value></param>"
            b"</params></methodCall>"
        )
        tokens = [t.token for t in BehavioralTagger(g).tag(message)]
        assert "STRING" in tokens and "INT" in tokens
        assert tokens[0] == "<methodCall>"

    def test_pcdata_map_covers_all_leaf_elements(self):
        for element in XMLRPC_PCDATA_PATTERNS:
            assert element in parse_dtd(XMLRPC_DTD)
