"""Built-in example grammars (Figs. 1, 9, 13, 14)."""

from repro.grammar.examples import (
    balanced_parens,
    if_then_else,
    xmlrpc,
)
from repro.grammar.symbols import NonTerminal, Terminal


class TestBalancedParens:
    def test_two_productions(self, parens_grammar):
        assert len(parens_grammar.productions) == 2
        assert parens_grammar.start == NonTerminal("E")

    def test_tokens(self, parens_grammar):
        assert {t.name for t in parens_grammar.lexspec} == {"(", ")", "0"}


class TestIfThenElse:
    def test_fig9_shape(self, ite_grammar):
        productions = [str(p) for p in ite_grammar.productions]
        assert "E → if C then E else E" in productions
        assert "C → true" in productions

    def test_seven_terminals(self, ite_grammar):
        assert {t.name for t in ite_grammar.lexspec} == {
            "if", "then", "else", "go", "stop", "true", "false",
        }


class TestXmlRpc:
    def test_token_count_matches_paper(self, xmlrpc_grammar):
        # "The grammar for XML-RPC is relatively small with only 45
        # tokens and approximately 300 bytes of pattern data."
        assert 40 <= len(xmlrpc_grammar.lexspec) <= 50

    def test_named_tokens_present(self, xmlrpc_grammar):
        for name in ("STRING", "INT", "DOUBLE", "YEAR", "MONTH", "DAY",
                     "HOUR", "MIN", "SEC", "BASE64"):
            assert name in xmlrpc_grammar.lexspec

    def test_all_value_kinds_reachable(self, xmlrpc_grammar):
        value = NonTerminal("value")
        kinds = {
            p.rhs[0].name
            for p in xmlrpc_grammar.productions_for(value)
        }
        assert kinds == {
            "i4", "int", "string", "dateTime", "double",
            "base64", "struct", "array",
        }

    def test_datetime_inline_tokens(self, xmlrpc_grammar):
        datetime_production = xmlrpc_grammar.productions_for(
            NonTerminal("dateTime")
        )[0]
        names = [s.name for s in datetime_production.rhs]
        assert names == [
            "<dateTime.iso8601>", "YEAR", "MONTH", "DAY", "T",
            "HOUR", ":", "MIN", ":", "SEC", "</dateTime.iso8601>",
        ]

    def test_grammar_objects_are_fresh(self):
        a, b = xmlrpc(), xmlrpc()
        assert a is not b
        assert len(a.productions) == len(b.productions)

    def test_member_list_is_ll1(self, xmlrpc_grammar):
        """Our documented fix: the struct member list parses LL(1)."""
        from repro.software.ll1 import LL1Parser

        LL1Parser(xmlrpc_grammar)  # raises GrammarError on conflict
