"""Lex-subset regex parser."""

import pytest

from repro.errors import RegexSyntaxError
from repro.grammar.regex.ast import (
    Alt,
    AnyChar,
    CharClass,
    Literal,
    Repeat,
    Seq,
)
from repro.grammar.regex.parser import parse_regex


class TestAtoms:
    def test_plain_char(self):
        assert parse_regex("a") == Literal(ord("a"))

    def test_dot_is_any(self):
        node = parse_regex(".")
        assert isinstance(node, AnyChar)
        assert not node.contains(ord("\n"))

    def test_escaped_dot_is_literal(self):
        assert parse_regex(r"\.") == Literal(ord("."))

    def test_escape_sequences(self):
        assert parse_regex(r"\n") == Literal(ord("\n"))
        assert parse_regex(r"\t") == Literal(ord("\t"))
        assert parse_regex(r"\x41") == Literal(ord("A"))

    def test_escape_classes(self):
        digit = parse_regex(r"\d")
        assert isinstance(digit, CharClass)
        assert digit.contains(ord("7")) and not digit.contains(ord("a"))
        word = parse_regex(r"\w")
        assert word.contains(ord("_"))

    def test_bad_hex_escape(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex(r"\xzz")


class TestClasses:
    def test_simple_class(self):
        node = parse_regex("[abc]")
        assert node.matched_bytes() == frozenset(b"abc")

    def test_ranges(self):
        node = parse_regex("[a-cx]")
        assert node.matched_bytes() == frozenset(b"abcx")

    def test_multiple_ranges_fig14_string(self):
        node = parse_regex("[a-zA-Z0-9]")
        assert node.contains(ord("q"))
        assert node.contains(ord("Q"))
        assert node.contains(ord("5"))
        assert not node.contains(ord("-"))

    def test_negated_class(self):
        node = parse_regex("[^ab]")
        assert not node.contains(ord("a"))
        assert node.contains(ord("z"))

    def test_literal_bracket_chars(self):
        node = parse_regex(r"[\]\-]")
        assert node.matched_bytes() == frozenset(b"]-")

    def test_leading_rbracket_is_literal(self):
        node = parse_regex("[]a]")
        assert node.matched_bytes() == frozenset(b"]a")

    def test_reversed_range_rejected(self):
        with pytest.raises(RegexSyntaxError, match="reversed"):
            parse_regex("[z-a]")

    def test_unterminated_class(self):
        with pytest.raises(RegexSyntaxError, match="unterminated"):
            parse_regex("[ab")


class TestOperators:
    def test_postfix_operators(self):
        assert parse_regex("a?") == Repeat(Literal(97), 0, 1)
        assert parse_regex("a*") == Repeat(Literal(97), 0, None)
        assert parse_regex("a+") == Repeat(Literal(97), 1, None)

    def test_bounded_repeat(self):
        assert parse_regex("a{3}") == Repeat(Literal(97), 3, 3)
        assert parse_regex("a{2,4}") == Repeat(Literal(97), 2, 4)
        assert parse_regex("a{2,}") == Repeat(Literal(97), 2, None)

    def test_not_single_char(self):
        node = parse_regex("!a")
        assert isinstance(node, CharClass) and node.negated
        assert not node.contains(ord("a"))
        assert node.contains(ord("b"))

    def test_not_on_class(self):
        node = parse_regex("![ab]")
        assert not node.contains(ord("a"))
        assert node.contains(ord("c"))

    def test_not_on_group_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("!(ab)")

    def test_concatenation_and_alternation(self):
        node = parse_regex("ab|c")
        assert isinstance(node, Alt)
        assert isinstance(node.options[0], Seq)

    def test_groups(self):
        node = parse_regex("(ab)+")
        assert isinstance(node, Repeat)
        assert isinstance(node.item, Seq)

    def test_stacked_operators(self):
        node = parse_regex("a+?")
        assert node == Repeat(Repeat(Literal(97), 1, None), 0, 1)


class TestPaperTokens:
    """Every token pattern in Fig. 14 must parse."""

    @pytest.mark.parametrize(
        "pattern",
        [
            "[a-zA-Z0-9]+",
            "[+-]?[0-9]+",
            r"[+-]?[0-9]+\.[0-9]+",
            "[0-9][0-9][0-9][0-9]",
            "[0-9][0-9]",
            "[+/A-Za-z0-9]+",
        ],
    )
    def test_fig14_patterns(self, pattern):
        parse_regex(pattern)

    def test_int_structure(self):
        node = parse_regex("[+-]?[0-9]+")
        assert isinstance(node, Seq)
        sign, digits = node.items
        assert isinstance(sign, Repeat) and sign.operator == "?"
        assert isinstance(digits, Repeat) and digits.operator == "+"


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a)")

    def test_misplaced_operator(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("*a")

    def test_unclosed_group(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("(ab")

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as info:
            parse_regex("ab[")
        assert info.value.position >= 2


class TestRoundTrip:
    @pytest.mark.parametrize(
        "pattern", ["abc", "[0-9]+", "a|b|c", "(ab)?c*", "!x[a-f]{2}"]
    )
    def test_str_reparses_equal(self, pattern):
        node = parse_regex(pattern)
        assert parse_regex(str(node)) == node
