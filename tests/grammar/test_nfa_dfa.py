"""NFA/DFA matchers: unit cases plus equivalence properties.

The property tests cross-check three independent implementations —
Thompson NFA, subset-construction DFA, and Python's :mod:`re` — on
randomly generated patterns and inputs.
"""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.grammar.regex.dfa import compile_dfa
from repro.grammar.regex.nfa import compile_nfa
from repro.grammar.regex.parser import parse_regex


class TestNFA:
    @pytest.mark.parametrize(
        "pattern,yes,no",
        [
            ("abc", [b"abc"], [b"ab", b"abcd", b""]),
            ("a+", [b"a", b"aaa"], [b"", b"b", b"ab"]),
            ("a*b", [b"b", b"aab"], [b"a", b""]),
            ("a|bc", [b"a", b"bc"], [b"b", b"abc"]),
            ("(ab)+", [b"ab", b"abab"], [b"a", b"aba"]),
            ("[0-9]{2,3}", [b"12", b"123"], [b"1", b"1234"]),
            ("x?y", [b"y", b"xy"], [b"x", b"xxy"]),
            ("!a", [b"b", b"z"], [b"a", b"bb"]),
        ],
    )
    def test_match(self, pattern, yes, no):
        nfa = compile_nfa(parse_regex(pattern))
        for data in yes:
            assert nfa.matches(data), (pattern, data)
        for data in no:
            assert not nfa.matches(data), (pattern, data)

    def test_longest_match(self):
        nfa = compile_nfa(parse_regex("[0-9]+"))
        assert nfa.longest_match(b"123abc") == 3
        assert nfa.longest_match(b"abc") is None
        assert nfa.longest_match(b"a123", start=1) == 3

    def test_longest_match_empty_capable(self):
        nfa = compile_nfa(parse_regex("a*"))
        assert nfa.longest_match(b"bbb") == 0


class TestDFA:
    @pytest.mark.parametrize("minimize", [False, True])
    def test_same_language_as_nfa(self, minimize):
        pattern = parse_regex("[+-]?[0-9]+")
        nfa, dfa = compile_nfa(pattern), compile_dfa(pattern, minimize=minimize)
        for data in (b"7", b"+42", b"-0", b"", b"+", b"4-2", b"99x"):
            assert dfa.matches(data) == nfa.matches(data), data

    def test_minimization_reduces_states(self):
        pattern = parse_regex("(a|b)(a|b)")
        full = compile_dfa(pattern, minimize=False)
        minimal = compile_dfa(pattern, minimize=True)
        assert minimal.n_states <= full.n_states
        for data in (b"ab", b"ba", b"aa", b"a", b"abc"):
            assert minimal.matches(data) == full.matches(data)

    def test_longest_match_agrees_with_nfa(self):
        pattern = parse_regex("a+b?")
        nfa, dfa = compile_nfa(pattern), compile_dfa(pattern)
        for data in (b"aaab", b"ab", b"b", b"aaa", b""):
            assert dfa.longest_match(data) == nfa.longest_match(data)


# ----------------------------------------------------------------------
# property-based equivalence with Python's re module
# ----------------------------------------------------------------------
_atoms = st.sampled_from(["a", "b", "c", "0", "[ab]", "[a-c]", "[^a]", "."])
_ops = st.sampled_from(["", "?", "*", "+"])


@st.composite
def simple_patterns(draw, max_terms: int = 4):
    terms = draw(st.lists(st.tuples(_atoms, _ops), min_size=1, max_size=max_terms))
    return "".join(atom + op for atom, op in terms)


def _py_pattern(pattern: str) -> str:
    # Our '.' excludes newline, same as re's default.
    return pattern


@given(
    pattern=simple_patterns(),
    data=st.binary(min_size=0, max_size=8).map(
        lambda b: bytes(x % 128 for x in b)
    ),
)
@settings(max_examples=300, deadline=None)
def test_nfa_dfa_re_agree(pattern, data):
    node = parse_regex(pattern)
    nfa = compile_nfa(node)
    dfa = compile_dfa(node)
    expected = re.fullmatch(_py_pattern(pattern).encode(), data) is not None
    assert nfa.matches(data) == expected, (pattern, data)
    assert dfa.matches(data) == expected, (pattern, data)


@given(
    pattern=simple_patterns(max_terms=3),
    data=st.text(alphabet="abc0\n", min_size=0, max_size=10).map(
        lambda s: s.encode()
    ),
    start=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=200, deadline=None)
def test_longest_match_equals_re(pattern, data, start):
    start = min(start, len(data))
    node = parse_regex(pattern)
    nfa = compile_nfa(node)
    match = re.compile(_py_pattern(pattern).encode()).match(data, start)
    expected = None if match is None else match.end() - start
    # re.match returns the *greedy* match which is the longest for our
    # operator subset (no alternation in these patterns).
    assert nfa.longest_match(data, start) == expected
