"""Grammar writer: serialization and round-trip equivalence."""

import pytest

from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc
from repro.grammar.writer import save_yacc_grammar, write_yacc_grammar
from repro.grammar.yacc_parser import parse_yacc_grammar


def _signature(grammar):
    """Order-stable structural fingerprint of a grammar."""
    productions = tuple(
        (p.lhs.name, tuple(s.name for s in p.rhs)) for p in grammar.productions
    )
    tokens = tuple(
        (t.name, str(t.pattern), t.is_literal) for t in grammar.lexspec
    )
    return (
        productions,
        tokens,
        grammar.start.name,
        grammar.lexspec.delimiters.matched_bytes(),
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder", [if_then_else, balanced_parens, xmlrpc]
    )
    def test_paper_grammars(self, builder):
        original = builder()
        text = write_yacc_grammar(original)
        reparsed = parse_yacc_grammar(text, name=original.name)
        assert _signature(reparsed) == _signature(original)

    def test_scaled_grammar(self):
        from repro.bench.scaling import scaled_xmlrpc

        original = scaled_xmlrpc(2)
        reparsed = parse_yacc_grammar(write_yacc_grammar(original))
        assert _signature(reparsed)[0] == _signature(original)[0]

    def test_custom_delimiters_preserved(self):
        original = parse_yacc_grammar(
            "%delim [|;]\n%%\ns: \"a\" s | \"b\";\n"
        )
        reparsed = parse_yacc_grammar(write_yacc_grammar(original))
        assert reparsed.lexspec.delimiters.matched_bytes() == frozenset(b"|;")

    def test_explicit_start_preserved(self):
        original = parse_yacc_grammar(
            "%start inner\n%%\nouter: inner;\ninner: \"x\" outer \"y\" | \"z\";\n"
        )
        reparsed = parse_yacc_grammar(write_yacc_grammar(original))
        assert reparsed.start.name == "inner"

    def test_epsilon_alternatives(self):
        original = parse_yacc_grammar('%%\nlist: | "x" list;\n')
        reparsed = parse_yacc_grammar(write_yacc_grammar(original))
        assert _signature(reparsed)[0] == _signature(original)[0]


class TestRendering:
    def test_token_section_format(self):
        text = write_yacc_grammar(xmlrpc())
        assert text.startswith("STRING")
        assert "[a-zA-Z0-9]+" in text
        assert text.count("%%") == 2

    def test_save_to_disk(self, tmp_path):
        path = tmp_path / "out.y"
        save_yacc_grammar(if_then_else(), str(path))
        reparsed = parse_yacc_grammar(path.read_text())
        assert len(reparsed.productions) == 5

    def test_behavioural_equivalence_after_roundtrip(self):
        """The round-tripped grammar tags identically."""
        from repro.core.tagger import BehavioralTagger

        original = xmlrpc()
        reparsed = parse_yacc_grammar(write_yacc_grammar(original))
        message = (
            b"<methodCall><methodName>buy</methodName>"
            b"<params><param><i4>1</i4></param></params></methodCall>"
        )
        a = [str(t) for t in BehavioralTagger(original).tag(message)]
        b = [str(t) for t in BehavioralTagger(reparsed).tag(message)]
        assert a == b
