"""Lexical specification container."""

import pytest

from repro.errors import GrammarError
from repro.grammar.lexspec import DEFAULT_DELIMITERS, LexSpec
from repro.grammar.regex.ast import CharClass


class TestDefine:
    def test_define_and_lookup(self):
        spec = LexSpec()
        token = spec.define("NUM", "[0-9]+")
        assert spec.get("NUM") is token
        assert "NUM" in spec
        assert len(spec) == 1

    def test_duplicate_rejected(self):
        spec = LexSpec()
        spec.define("A", "a")
        with pytest.raises(GrammarError, match="already defined"):
            spec.define("A", "b")

    def test_unknown_lookup(self):
        with pytest.raises(GrammarError, match="unknown token"):
            LexSpec().get("missing")

    def test_literal_idempotent(self):
        spec = LexSpec()
        first = spec.define_literal("<tag>")
        second = spec.define_literal("<tag>")
        assert first is second
        assert len(spec) == 1

    def test_literal_collision_with_named(self):
        spec = LexSpec()
        spec.define("x", "[0-9]")
        with pytest.raises(GrammarError, match="collides"):
            spec.define_literal("x")

    def test_source_preserved(self):
        spec = LexSpec()
        token = spec.define("NUM", "[0-9]+")
        assert token.source == "[0-9]+"


class TestDelimiters:
    def test_default_whitespace(self):
        spec = LexSpec()
        assert spec.is_delimiter(ord(" "))
        assert spec.is_delimiter(ord("\t"))
        assert not spec.is_delimiter(ord("a"))
        assert spec.delimiters == DEFAULT_DELIMITERS

    def test_custom(self):
        spec = LexSpec(delimiters=CharClass(frozenset(b",")))
        assert spec.is_delimiter(ord(","))
        assert not spec.is_delimiter(ord(" "))


class TestMetrics:
    def test_total_pattern_bytes(self):
        spec = LexSpec()
        spec.define_literal("abc")       # 3
        spec.define("D", "[0-9]+")       # 1
        spec.define("E", "[+-]?[0-9]+")  # 2
        assert spec.total_pattern_bytes() == 6

    def test_fixed_text(self):
        spec = LexSpec()
        assert spec.define_literal("go").fixed_text() == b"go"
        assert spec.define("W", "[a-z]+").fixed_text() is None

    def test_describe(self):
        spec = LexSpec()
        spec.define("NUM", "[0-9]+")
        text = spec.describe()
        assert "NUM" in text and "delimiters" in text
