"""The plaintext admin endpoint: /metrics exposition, /healthz, /stats
JSON, and 404 discipline — plus the closed-loop load generator."""

import asyncio
import json

from repro.server import ScanClient

from tests.server.conftest import running_server


def run(coro):
    return asyncio.run(coro)


async def _http_get(address, path: str) -> tuple[str, str]:
    reader, writer = await asyncio.open_connection(*address)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _sep, body = raw.decode("utf-8").partition("\r\n\r\n")
    status = head.splitlines()[0].split(" ", 1)[1]
    return status, body


# ----------------------------------------------------------------------
def test_metrics_endpoint_serves_prometheus_text(streams):
    async def main():
        async with running_server(admin_port=0) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                await client.scan_stream(streams["flow-0"], 256)
            status, body = await _http_get(server.admin_address, "/metrics")
        assert status == "200 OK"
        assert "# TYPE repro_server_flows_opened counter" in body
        assert "repro_server_flows_finished 1" in body
        assert 'repro_latency_flow_s_bucket{le="+Inf"} 1' in body
        assert "repro_server_connections_open 0" in body  # gauge

    run(main())


def test_healthz_and_stats_and_404():
    async def main():
        async with running_server(admin_port=0) as server:
            status, body = await _http_get(server.admin_address, "/healthz")
            assert (status, body) == ("200 OK", "ok\n")
            status, body = await _http_get(server.admin_address, "/stats")
            assert status == "200 OK"
            stats = json.loads(body)
            assert "counters" in stats and "histograms" in stats
            status, _body = await _http_get(server.admin_address, "/nope")
            assert status == "404 Not Found"

    run(main())


# ----------------------------------------------------------------------
def test_load_generator_closed_loop_verifies(streams):
    """run_load drives a live server and verifies byte-for-byte
    against in-process routing — the network-level differential."""
    from repro.server import run_load

    async def main():
        async with running_server() as server:
            host, port = server.address
            report = await run_load(
                host, port,
                flows=4, messages=12, chunk=256,
                concurrency=2, seed=123, verify=True,
            )
        assert report["verified"] is True
        assert report["failures"] == []
        assert report["bytes"] > 0 and report["gbps"] > 0
        assert report["latency"]["count"] == 4

    run(main())


def test_load_generator_against_worker_pool():
    from repro.server import run_load

    async def main():
        async with running_server(workers=2) as server:
            host, port = server.address
            report = await run_load(
                host, port,
                flows=6, messages=18, chunk=512,
                concurrency=3, seed=321, verify=True,
            )
        assert report["verified"] is True

    run(main())
