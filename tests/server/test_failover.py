"""Failover: killing a backend under live flows.

The proxy's failover contract (DESIGN.md §14): scan and mask flows
are journal-replayed onto a surviving backend and the client sees
byte-for-byte the same results it would have seen with no kill; beam
flows are *not* replayable (their server state is a delta chain) and
the client receives a typed FAILOVER error instead of silently wrong
masks. All kills here are hard (``stop(drain=False)`` — TCP reset
semantics, no DRAINING courtesy), the worst case.
"""

import asyncio
import contextlib

import pytest

from repro.apps.structgen import MaskSession, build_mask_table, synthetic_vocab
from repro.apps.xmlrpc import ContentBasedRouter, MethodCall
from repro.grammar.examples import xmlrpc
from repro.server import (
    ScanClient,
    ScanProxy,
    ScanServer,
    ServerFault,
    run_beam_load,
    run_mask_load,
)
from repro.server.loadgen import _set_bits
from repro.server.protocol import ErrorCode


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def table():
    return build_mask_table(xmlrpc(), synthetic_vocab(size=384, seed=7))


@contextlib.asynccontextmanager
async def failover_cluster(table, n=3):
    """N backends behind a fast-probing proxy; the test kills some."""
    servers = []
    for _ in range(n):
        server = ScanServer(port=0, mask_tables=[table])
        await server.start()
        servers.append(server)
    proxy = ScanProxy(
        [s.address for s in servers], port=0, health_interval=0.2
    )
    await proxy.start()
    try:
        yield proxy, servers
    finally:
        await proxy.stop(drain=False)
        for server in servers:
            if not server._stopped.is_set():
                await server.stop(drain=False)


def _owner(proxy, flow_id, kind=None):
    """Which backend a proxied client flow is currently pinned to."""
    for conn in proxy._connections.values():
        flow = conn.flows.get(flow_id)
        if flow is not None and (kind is None or flow.kind == kind):
            return flow.backend
    return None


def _server_named(servers, name):
    for server in servers:
        if f"{server.address[0]}:{server.address[1]}" == name:
            return server
    raise AssertionError(f"no server named {name}")


async def _pinned_backend(proxy, flow_id, kind=None, timeout=5.0):
    """Wait until the proxy has pinned the flow and return its backend."""
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        backend = _owner(proxy, flow_id, kind)
        if backend is not None:
            return backend
        await asyncio.sleep(0.02)
    raise AssertionError("flow never pinned to a backend")


# ----------------------------------------------------------------------
# single-flow kills: exact bytes (scan/mask), typed error (beam)
# ----------------------------------------------------------------------
def test_scan_flow_survives_backend_kill_byte_for_byte(table):
    async def scenario():
        router = ContentBasedRouter()
        data = b"".join(
            MethodCall(name).encode() + b" "
            for name in ("buy", "sell", "deposit", "withdraw")
        )
        async with failover_cluster(table) as (proxy, servers):
            async with ScanClient(*proxy.address) as client:
                flow = await client.open_flow()
                await flow.send(data[: len(data) // 2])
                backend = await _pinned_backend(proxy, flow.flow_id)
                await _server_named(servers, backend.name).stop(drain=False)
                await flow.send(data[len(data) // 2 :])
                got = await flow.finish(timeout=15.0)
            assert got == router.route(data)
            assert proxy.metrics.counter("proxy.failovers").value >= 1

    run(scenario())


def test_mask_flow_survives_backend_kill_byte_for_byte(table):
    async def scenario():
        async with failover_cluster(table) as (proxy, servers):
            async with ScanClient(*proxy.address) as client:
                flow = await client.open_mask_flow(table.vocab_hash)
                local = MaskSession(table)

                async def step():
                    valid = _set_bits(local.mask())
                    assert valid, "mirror dead-ended mid-test"
                    state, row = await flow.advance(valid[0], timeout=15.0)
                    assert state == local.advance(valid[0])
                    assert row == local.mask()

                for _ in range(10):
                    await step()
                backend = await _pinned_backend(proxy, flow.flow_id, "mask")
                await _server_named(servers, backend.name).stop(drain=False)
                for _ in range(10):  # replayed journal → identical bytes
                    await step()
                await flow.close()
            assert proxy.metrics.counter("proxy.failovers").value >= 1

    run(scenario())


def test_beam_flow_gets_typed_failover(table):
    async def scenario():
        async with failover_cluster(table) as (proxy, servers):
            async with ScanClient(*proxy.address) as client:
                flow = await client.open_beam_flow(table.vocab_hash, 3)
                ids = [_set_bits(row)[0] for row in flow.rows]
                await flow.advance(ids)
                backend = await _pinned_backend(proxy, flow.flow_id, "beam")
                await _server_named(servers, backend.name).stop(drain=False)
                with pytest.raises(ServerFault) as info:
                    for _ in range(5):
                        ids = [_set_bits(row)[0] for row in flow.rows]
                        await flow.advance(ids, timeout=15.0)
                assert info.value.code == ErrorCode.FAILOVER
                assert "not replayable" in info.value.detail

    run(scenario())


# ----------------------------------------------------------------------
# kills under load: the generators keep verifying through a failover
# ----------------------------------------------------------------------
async def _kill_first_owner(proxy, servers, kind, timeout=10.0):
    """Wait for any flow of ``kind`` to be pinned, then hard-kill its
    backend; returns the killed server's name."""
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        for conn in list(proxy._connections.values()):
            for flow in list(conn.flows.values()):
                if flow.kind == kind and flow.backend is not None:
                    name = flow.backend.name
                    await _server_named(servers, name).stop(drain=False)
                    return name
        await asyncio.sleep(0.02)
    raise AssertionError(f"no {kind} flow ever pinned")


def test_mask_load_survives_backend_kill(table):
    """run_mask_load with a backend hard-killed mid-run: every reply —
    including those after the journal re-replay — must still match the
    in-process mirrors, so verified stays True."""

    async def scenario():
        async with failover_cluster(table) as (proxy, servers):
            host, port = proxy.address
            load = asyncio.ensure_future(
                run_mask_load(
                    host,
                    port,
                    table,
                    sessions=6,
                    steps=120,
                    concurrency=3,
                    request_timeout=30.0,
                )
            )
            await asyncio.sleep(0.1)
            await _kill_first_owner(proxy, servers, "mask")
            report = await asyncio.wait_for(load, 120.0)
            assert report["failures"] == []
            assert report["mismatches"] == []
            assert report["verified"] is True
            assert report["sessions"] == 6

    run(scenario())


def test_beam_load_surfaces_failover_not_garbage(table):
    """run_beam_load with the beam-owning backend killed mid-run: the
    affected beams end with a typed FAILOVER failure, and — crucially —
    zero mismatches: the proxy never forwards masks from a replacement
    backend whose delta chain wouldn't line up."""

    async def scenario():
        async with failover_cluster(table) as (proxy, servers):
            host, port = proxy.address
            load = asyncio.ensure_future(
                run_beam_load(
                    host,
                    port,
                    table,
                    beams=4,
                    width=4,
                    steps=200,
                    concurrency=2,
                    request_timeout=30.0,
                )
            )
            await asyncio.sleep(0.1)
            killed = await _kill_first_owner(proxy, servers, "beam")
            report = await asyncio.wait_for(load, 120.0)
            assert report["mismatches"] == []
            assert any("FAILOVER" in f for f in report["failures"]), (
                killed,
                report["failures"],
            )

    run(scenario())
