"""Grammar hot-swap on the serving edge.

A swap must route *new* OPEN_FLOWs to the new artifact while flows
already open finish on the generation (plan, tables, pool) they
started with — zero failed flows. Also covered: the admin
``POST /swap`` route, the HELLO grammar advertisement, generation
retirement, and per-ref quotas (``ERROR(OVERLOADED)``).
"""

import asyncio

import pytest

from repro.grammar.examples import if_then_else, xmlrpc
from repro.server.client import ScanClient
from repro.server.protocol import ErrorCode, ServerFault
from repro.service import Registry, TaggerSpec
from tests.server.conftest import running_server

XML_HEAD = b"<methodCall><methodName>add</methodName>"
XML_TAIL = b"</methodCall>"
ITE_DATA = b"if true then go else stop"


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def registry(tmp_path):
    reg = Registry(str(tmp_path / "store"))
    reg.xml_ref = reg.publish("xmlrpc", xmlrpc())
    reg.ite_ref = reg.publish("ifelse", if_then_else())
    return reg


def _spec(registry, ref) -> TaggerSpec:
    return TaggerSpec(registry_ref=ref, registry_root=registry.root)


def _expected(registry, ref, *chunks) -> str:
    session = _spec(registry, ref).build().new_session()
    items = []
    for chunk in chunks:
        items.extend(session.feed(chunk))
    items.extend(session.finish())
    return repr(items)


async def _wait_open_flows(server, n: int) -> None:
    for _ in range(1000):
        if sum(len(c.flows) for c in server._connections.values()) >= n:
            return
        await asyncio.sleep(0.005)
    raise AssertionError(f"never saw {n} open flow(s) server-side")


async def _admin(address, method: str, path: str) -> tuple[str, str]:
    """One admin request, reading the body by Content-Length (pool
    workers forked mid-request hold the socket open past our close,
    so read-to-EOF would hang)."""
    reader, writer = await asyncio.open_connection(*address)
    writer.write(f"{method} {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    status_line = (await reader.readline()).decode()
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = (await reader.readexactly(length)).decode()
    writer.close()
    return status_line.split(" ", 1)[1].strip(), body


# ----------------------------------------------------------------------
def test_swap_pins_inflight_flows_to_their_generation(registry):
    async def main():
        async with running_server(
            spec=_spec(registry, registry.xml_ref), registry=registry
        ) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                old = await client.open_flow()
                await old.send(XML_HEAD)  # mid-stream when the swap hits
                await _wait_open_flows(server, 1)

                info = server.swap_grammar(registry.ite_ref)
                assert info["grammar"] == registry.ite_ref
                assert info["previous"] == registry.xml_ref
                assert info["draining"] == 1

                new = await client.open_flow()
                await new.send(ITE_DATA)
                old_items = repr(await old.finish())
                new_items = repr(await new.finish())

            assert old_items == _expected(
                registry, registry.xml_ref, XML_HEAD
            ), "in-flight flow drifted off the plan it started on"
            assert new_items == _expected(
                registry, registry.ite_ref, ITE_DATA
            ), "post-swap flow not served by the new grammar"
            # The drained generation was retired.
            assert [g.ref for g in server._generations.values()] == [
                registry.ite_ref
            ]
            snapshot = server.stats()
            assert snapshot["counters"]["server.swaps"] == 1
            assert snapshot["counters"]["server.swaps.retired"] == 1
            tenants = {
                k: v for k, v in snapshot["counters"].items()
                if k.startswith("tenant.")
            }
            assert tenants[f"tenant.{registry.xml_ref}.flows_finished"] == 1
            assert tenants[f"tenant.{registry.ite_ref}.flows_finished"] == 1

    run(main())


def test_swap_back_reuses_generation_still_draining(registry):
    async def main():
        async with running_server(
            spec=_spec(registry, registry.xml_ref), registry=registry
        ) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                flow = await client.open_flow()
                await flow.send(XML_HEAD)  # keeps generation 1 alive
                await _wait_open_flows(server, 1)
                first = server._current
                server.swap_grammar(registry.ite_ref)
                assert server._current is not first
                # Swapping back mid-drain must reattach to the still-
                # live original generation, not build a third one.
                server.swap_grammar(registry.xml_ref)
                assert server._current is first
                assert len(server._generations) == 1
                await flow.finish()

    run(main())


def test_hello_advertises_registry_grammars(registry):
    async def main():
        async with running_server(
            spec=_spec(registry, registry.xml_ref), registry=registry
        ) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                assert client.server_grammars[0] == registry.xml_ref
                assert registry.ite_ref in client.server_grammars

    run(main())


def test_hello_without_registry_stays_bare(registry):
    async def main():
        async with running_server() as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                assert client.server_grammars == ()

    run(main())


def test_quota_refuses_flows_past_the_limit(registry):
    async def main():
        async with running_server(
            spec=_spec(registry, registry.xml_ref),
            registry=registry,
            quotas={registry.xml_ref: 1},
        ) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                first = await client.open_flow()
                await first.send(XML_HEAD)
                await _wait_open_flows(server, 1)
                second = await client.open_flow()
                with pytest.raises(ServerFault) as excinfo:
                    await second.send(b"x")
                    await second.finish(timeout=5)
                assert excinfo.value.code == ErrorCode.OVERLOADED
                # The refused flow freed nothing it never held: once
                # the first finishes, the quota slot opens again.
                await first.finish()
                third = await client.open_flow()
                await third.send(XML_HEAD)
                await third.finish()

    run(main())


def test_admin_swap_routes(registry):
    async def main():
        async with running_server(
            spec=_spec(registry, registry.xml_ref),
            registry=registry,
            admin_port=0,
        ) as server:
            status, body = await _admin(
                server.admin_address, "POST",
                f"/swap?grammar={registry.ite_ref}",
            )
            assert status == "200 OK"
            assert f'"grammar": "{registry.ite_ref}"' in body
            assert server._current.ref == registry.ite_ref

            status, body = await _admin(
                server.admin_address, "POST", "/swap"
            )
            assert status == "400 Bad Request"

            status, body = await _admin(
                server.admin_address, "GET", "/swap?grammar=x"
            )
            assert status == "405 Method Not Allowed"

            status, body = await _admin(
                server.admin_address, "POST", "/swap?grammar=ghost@9"
            )
            assert status == "409 Conflict"
            assert server._current.ref == registry.ite_ref

    run(main())


def test_swap_without_registry_is_refused():
    async def main():
        async with running_server(admin_port=0) as server:
            status, body = await _admin(
                server.admin_address, "POST", "/swap?grammar=x@1"
            )
            assert status == "409 Conflict"
            assert "registry" in body

    run(main())


def test_pool_mode_swap_drains_old_pool(registry):
    async def main():
        async with running_server(
            spec=_spec(registry, registry.xml_ref),
            registry=registry,
            workers=1,
        ) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                old = await client.open_flow()
                await old.send(XML_HEAD)
                await _wait_open_flows(server, 1)
                server.swap_grammar(registry.ite_ref)
                assert len(server._generations) == 2
                new = await client.open_flow()
                await new.send(ITE_DATA)
                old_items = repr(await old.finish(timeout=30))
                new_items = repr(await new.finish(timeout=30))
            assert old_items == _expected(
                registry, registry.xml_ref, XML_HEAD
            )
            assert new_items == _expected(
                registry, registry.ite_ref, ITE_DATA
            )
            # The poll task retires the drained generation (and closes
            # its worker pool) shortly after the last final delivers.
            for _ in range(400):
                if len(server._generations) == 1:
                    break
                await asyncio.sleep(0.01)
            assert [g.ref for g in server._generations.values()] == [
                registry.ite_ref
            ]

    run(main())
