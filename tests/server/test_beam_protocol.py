"""Beam flows over the framed wire protocol.

The acceptance invariant: every MASKS reply a live ``ScanServer``
streams back over OPEN_BEAM/BATCH_ADVANCE — advances, forks, and
rollbacks, with lanes delta-encoded on the wire — reconstructs to
byte-for-byte what an in-process :class:`BeamMaskSession` (and N
independent :class:`MaskSession` mirrors) on the same table produces.
Plus the frame codecs, the atomicity contract (``BAD_TOKEN`` leaves
the beam flow open), hot swap mid-beam pinning, drain discipline, and
the admin exposition of the memo/delta/beam telemetry.
"""

import asyncio
import json
import random
import struct
import time

import pytest

from repro.apps.structgen import (
    MaskSession,
    build_mask_table,
    synthetic_vocab,
)
from repro.apps.structgen.beam import BeamMaskSession
from repro.grammar.examples import if_then_else, xmlrpc
from repro.server import ScanClient, protocol
from repro.server.loadgen import _set_bits, run_beam_load
from repro.server.protocol import (
    MAX_BEAM_WIDTH,
    BeamOp,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    ServerFault,
    decode_batch_advance,
    decode_masks,
    decode_open_beam,
    encode_batch_advance,
    encode_masks,
    encode_open_beam,
)
from repro.service import Registry, TaggerSpec
from tests.server.conftest import running_server
from tests.server.test_hot_swap import _admin

VOCAB_HASH = "ab" * 32


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def table():
    return build_mask_table(xmlrpc(), synthetic_vocab(size=384, seed=7))


def decode_all(blob: bytes):
    return FrameDecoder(1 << 20).feed(blob)


# ----------------------------------------------------------------------
# frame codecs
# ----------------------------------------------------------------------
def test_open_beam_roundtrip():
    (frame,) = decode_all(encode_open_beam(7, 32, VOCAB_HASH))
    assert frame.type == FrameType.OPEN_BEAM
    assert decode_open_beam(frame) == (7, 32, VOCAB_HASH)
    with pytest.raises(ProtocolError):
        encode_open_beam(7, 0, VOCAB_HASH)
    with pytest.raises(ProtocolError):
        encode_open_beam(7, MAX_BEAM_WIDTH + 1, VOCAB_HASH)
    with pytest.raises(ProtocolError):
        encode_open_beam(7, 4, "ab" * 8)  # not a sha256 digest
    with pytest.raises(ProtocolError):
        decode_open_beam(Frame(FrameType.OPEN_BEAM, b"\x00\x01"))


def test_batch_advance_roundtrip():
    (frame,) = decode_all(encode_batch_advance(9, BeamOp.ADVANCE, [3, 1, 4]))
    assert frame.type == FrameType.BATCH_ADVANCE
    assert decode_batch_advance(frame) == (9, BeamOp.ADVANCE, (3, 1, 4))
    (frame,) = decode_all(encode_batch_advance(9, BeamOp.FORK, 2))
    assert decode_batch_advance(frame) == (9, BeamOp.FORK, 2)
    (frame,) = decode_all(encode_batch_advance(9, BeamOp.ROLLBACK, 5))
    assert decode_batch_advance(frame) == (9, BeamOp.ROLLBACK, 5)
    with pytest.raises(ProtocolError):
        encode_batch_advance(9, BeamOp.ADVANCE, [])
    with pytest.raises(ProtocolError):
        encode_batch_advance(9, 99, 1)
    # ADVANCE body must be a whole number of u32 token ids.
    bad = Frame(
        FrameType.BATCH_ADVANCE,
        struct.pack("!IB", 9, BeamOp.ADVANCE) + b"\x00\x00\x01",
    )
    with pytest.raises(ProtocolError):
        decode_batch_advance(bad)
    # FORK/ROLLBACK bodies are exactly one u32.
    bad = Frame(
        FrameType.BATCH_ADVANCE,
        struct.pack("!IB", 9, BeamOp.FORK) + b"\x00" * 8,
    )
    with pytest.raises(ProtocolError):
        decode_batch_advance(bad)


def test_masks_roundtrip_full_and_delta():
    row = bytes(range(48))
    patch = b"\x00\x05\xff" + b"\x00\x2e\x01"  # two 3-byte entries
    blob = encode_masks(4, 48, [(11, 0, row), (12, 1, patch)])
    (frame,) = decode_all(blob)
    assert frame.type == FrameType.MASKS
    flow_id, row_bytes, lanes = decode_masks(frame)
    assert (flow_id, row_bytes) == (4, 48)
    assert lanes == [(11, 0, row), (12, 1, patch)]
    # The delta lane is actually smaller on the wire than a full one.
    assert len(blob) < len(encode_masks(4, 48, [(11, 0, row)] * 2))
    with pytest.raises(ProtocolError):
        encode_masks(4, 48, [(11, 0, row[:-1])])  # short full row
    with pytest.raises(ProtocolError):
        encode_masks(4, 48, [(12, 1, b"\x00\x05")])  # not 3-byte entries
    with pytest.raises(ProtocolError):
        encode_masks(4, 48, [(12, 7, b"")])  # unknown kind
    # Truncated/overlong lane bodies are refused on decode.
    with pytest.raises(ProtocolError):
        decode_masks(Frame(FrameType.MASKS, frame.payload[:-1]))
    with pytest.raises(ProtocolError):
        decode_masks(Frame(FrameType.MASKS, frame.payload + b"\x00"))


# ----------------------------------------------------------------------
# server round trips
# ----------------------------------------------------------------------
def test_beam_flow_matches_local_sessions(table):
    """Seeded beam decode over TCP — advances, forks, rollbacks —
    byte-identical to in-process mirrors after delta reconstruction."""

    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            local = BeamMaskSession(table, 3)
            mirror = [MaskSession(table) for _ in range(3)]
            n = len(table.vocab)
            rng = random.Random(17)
            async with ScanClient(host, port) as client:
                flow = await client.open_beam_flow(table.vocab_hash, 3)
                assert flow.states == local.states
                assert flow.rows == local.masks()
                for _ in range(40):
                    roll = rng.random()
                    if roll < 0.12 and flow.width < 8:
                        lane = rng.randrange(flow.width)
                        states, rows = await flow.fork(lane)
                        local.fork(lane)
                        twin = MaskSession(table)
                        twin.state = mirror[lane].state
                        mirror.append(twin)
                    elif roll < 0.22 and local._history:
                        states, rows = await flow.rollback(1)
                        local.rollback(1)
                        mirror = [MaskSession(table) for _ in local.states]
                        for m, s in zip(mirror, local.states):
                            m.state = s
                    else:
                        ids = []
                        for m in mirror:
                            valid = _set_bits(m.mask())
                            if not valid:
                                ids = None
                                break
                            ids.append(rng.choice(valid))
                        if ids is None:
                            break
                        states, rows = await flow.advance(ids)
                        local.advance(ids)
                        for m, t in zip(mirror, ids):
                            m.advance(t)
                    assert states == local.states
                    assert states == tuple(m.state for m in mirror)
                    assert rows == local.masks()
                    assert rows == [bytes(m.mask()) for m in mirror]
                # Delta encoding actually engaged on this flow.
                assert flow.lanes_delta > 0
                await flow.close()
            snapshot = server.stats()
            assert snapshot["counters"]["structgen.beams_opened"] == 1
            assert snapshot["counters"]["structgen.beams_closed"] == 1
            assert snapshot["counters"]["structgen.beam_lanes_delta"] > 0
            assert snapshot["structgen"]["beams_open"] == 0

    run(main())


def test_beam_load_generator_verifies_byte_for_byte(table):
    """The acceptance check: the beam load generator's every remote
    reply — across forks, rollbacks, and dead-end reopens — equals
    the in-process mirrors, over real TCP."""

    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            report = await run_beam_load(
                host, port, table, beams=2, width=4, steps=30
            )
        assert report["verified"] is True
        assert report["failures"] == []
        assert report["mismatches"] == []
        assert report["ops"] > 0
        assert report["masks_per_s"] > 0
        assert 0.0 < report["wire_delta_ratio"] <= 1.0

    run(main())


def test_bad_token_keeps_beam_flow_open(table):
    """The beam engine is atomic: a BAD_TOKEN fails only the offending
    request; the flow stays open on its previous states and the next
    valid advance works."""

    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            local = BeamMaskSession(table, 2)
            async with ScanClient(host, port) as client:
                flow = await client.open_beam_flow(table.vocab_hash, 2)
                valid = _set_bits(bytearray(flow.rows[0]))
                invalid = next(
                    i
                    for i in range(len(table.vocab))
                    if i not in set(valid)
                )
                before = flow.states
                with pytest.raises(ServerFault) as info:
                    await flow.advance([valid[0], invalid], timeout=5.0)
                assert info.value.code == ErrorCode.BAD_TOKEN
                assert "lane 1" in str(info.value)
                assert flow.states == before
                states, rows = await flow.advance([valid[0], valid[0]])
                local.advance([valid[0], valid[0]])
                assert states == local.states
                assert rows == local.masks()
                await flow.close()
            snapshot = server.stats()
            assert snapshot["counters"]["structgen.beams_closed"] == 1

    run(main())


def test_data_on_beam_flow_rejected(table):
    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                flow = await client.open_beam_flow(table.vocab_hash, 2)
                await client._send(
                    protocol.encode_data(flow.flow_id, b"<x>")
                )
                with pytest.raises(ServerFault) as info:
                    await flow.advance([0, 0], timeout=5.0)
                assert info.value.code == ErrorCode.BAD_FRAME

    run(main())


def test_unknown_vocab_refused_for_beam(table):
    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                with pytest.raises(ServerFault) as info:
                    await client.open_beam_flow("cd" * 32, 4)
                assert info.value.code == ErrorCode.UNKNOWN_VOCAB

    run(main())


def test_drain_does_not_wait_for_beam_flows(table):
    """Beam flows never 'finish' on their own; stop(drain=True) must
    not hold the server open on their account."""

    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            client = ScanClient(host, port)
            await client.connect()
            await client.open_beam_flow(table.vocab_hash, 4)
            started = time.perf_counter()
            await server.stop(drain=True, timeout=10.0)
            assert time.perf_counter() - started < 5.0
            await client.close()

    run(main())


# ----------------------------------------------------------------------
# hot swap mid-beam (the pinning contract)
# ----------------------------------------------------------------------
def test_swap_mid_beam_pins_generation(tmp_path):
    """A beam flow opened before ``POST /swap`` keeps serving masks
    from the grammar it opened on, byte-identical until it closes;
    flows opened after the swap see the new grammar's masks."""
    registry = Registry(str(tmp_path / "store"))
    xml_ref = registry.publish("xmlrpc", xmlrpc())
    ite_ref = registry.publish("ifelse", if_then_else())
    vocab = synthetic_vocab(size=384, seed=7)
    registry.publish_masks(xml_ref, vocab)
    registry.publish_masks(ite_ref, vocab)
    xml_table = registry.load_masks(xml_ref, vocab.vocab_hash)
    ite_table = registry.load_masks(ite_ref, vocab.vocab_hash)
    assert xml_table.mask_row(0) != ite_table.mask_row(0)

    async def main():
        async with running_server(
            spec=TaggerSpec(
                registry_ref=xml_ref, registry_root=registry.root
            ),
            registry=registry,
            admin_port=0,
        ) as server:
            host, port = server.address
            old_local = BeamMaskSession(xml_table, 2)
            rng = random.Random(23)
            async with ScanClient(host, port) as client:
                flow = await client.open_beam_flow(vocab.vocab_hash, 2)
                assert flow.rows == old_local.masks()

                status, _body = await _admin(
                    server.admin_address, "POST",
                    f"/swap?grammar={ite_ref}",
                )
                assert status == "200 OK"
                assert server._current.ref == ite_ref

                # The pinned beam keeps walking the *old* grammar.
                for _ in range(15):
                    ids = []
                    for row in flow.rows:
                        valid = _set_bits(bytearray(row))
                        if not valid:
                            ids = None
                            break
                        ids.append(rng.choice(valid))
                    if ids is None:
                        break
                    states, rows = await flow.advance(ids)
                    old_local.advance(ids)
                    assert states == old_local.states
                    assert rows == old_local.masks(), (
                        "pinned beam drifted off its generation"
                    )
                await flow.fork(0)
                old_local.fork(0)
                assert flow.states == old_local.states
                assert flow.rows == old_local.masks()
                await flow.close()

                # A flow opened after the swap sees the new grammar.
                new_local = BeamMaskSession(ite_table, 2)
                fresh = await client.open_beam_flow(vocab.vocab_hash, 2)
                assert fresh.rows == new_local.masks()
                assert fresh.rows != [
                    bytes(xml_table.mask_row(0)),
                    bytes(xml_table.mask_row(0)),
                ]
                ids = [_set_bits(bytearray(r))[0] for r in fresh.rows]
                states, rows = await fresh.advance(ids)
                new_local.advance(ids)
                assert states == new_local.states
                assert rows == new_local.masks()
                await fresh.close()

    run(main())


# ----------------------------------------------------------------------
# admin exposition: memo counters, delta stats, beam telemetry
# ----------------------------------------------------------------------
def test_admin_exposes_memo_and_beam_telemetry(tmp_path):
    """/stats carries the CD-memo block, delta gauge, and beams_open;
    /metrics renders the counters in Prometheus text format."""
    registry = Registry(str(tmp_path / "store"))
    ref = registry.publish("xmlrpc", xmlrpc())
    vocab = synthetic_vocab(size=384, seed=7)
    # ci_max_len=2 forces context-dependent tokens → memo traffic.
    registry.publish_masks(ref, vocab, ci_max_len=2)

    async def main():
        async with running_server(
            registry=str(tmp_path / "store"),
            grammar=ref,
            admin_port=0,
        ) as server:
            host, port = server.address
            rng = random.Random(31)
            async with ScanClient(host, port) as client:
                flow = await client.open_beam_flow(vocab.vocab_hash, 4)
                for _ in range(10):
                    ids = []
                    for row in flow.rows:
                        valid = _set_bits(row)
                        if not valid:
                            ids = None
                            break
                        ids.append(rng.choice(valid))
                    if ids is None:
                        break
                    await flow.advance(ids)

                status, body = await _admin(
                    server.admin_address, "GET", "/stats"
                )
                assert status == "200 OK"
                stats = json.loads(body)
                sg = stats["structgen"]
                assert sg["beams_open"] == 1
                memo = sg["memo"]
                assert memo["misses"] > 0
                assert memo["hits"] > 0
                assert memo["capped"] >= 0
                table_info = sg["tables"][0]
                assert table_info["rev"] == 2
                assert table_info["deltas"]["rows_deltified"] > 0
                assert stats["counters"]["structgen.memo_hits"] == (
                    memo["hits"]
                )
                assert stats["gauges"]["structgen.delta_rows"] > 0

                status, body = await _admin(
                    server.admin_address, "GET", "/metrics"
                )
                assert status == "200 OK"
                assert "repro_structgen_memo_hits" in body
                assert "repro_structgen_memo_misses" in body
                assert "repro_structgen_beams_opened 1" in body
                assert "repro_structgen_beam_lanes_full" in body
                assert "repro_structgen_beam_lanes_delta" in body
                assert "repro_structgen_delta_rows" in body
                await flow.close()

    run(main())
