"""Gated end-to-end smoke: the real ``repro serve`` process driven by
the real ``repro client-bench`` CLI over localhost TCP, with
byte-for-byte verification and a SIGTERM graceful-drain check.

Heavier than a unit test (spawns interpreters), so it only runs when
``RUN_SERVER_SMOKE=1`` — the CI job sets it and enforces a hard
timeout so a hung drain fails fast.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.skipif(
    os.environ.get("RUN_SERVER_SMOKE") != "1",
    reason="set RUN_SERVER_SMOKE=1 to run the server round-trip smoke",
)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_listening(port: int, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection(("127.0.0.1", port), 0.5):
                return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError(f"server never listened on port {port}")


def test_server_roundtrip_smoke(tmp_path):
    """serve + client-bench end to end: a few hundred messages, exact
    results, clean SIGTERM drain."""
    port = _free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--workers", "2",
            "--idle-timeout", "60",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=tmp_path,  # client-bench writes BENCH json into its cwd
    )
    try:
        _wait_listening(port)
        bench = subprocess.run(
            [
                sys.executable, "-m", "repro", "client-bench",
                "--port", str(port),
                "--messages", "300", "--flows", "6",
                "--chunk", "777", "--concurrency", "3",
                "--json",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
            cwd=tmp_path,
        )
        assert bench.returncode == 0, bench.stdout + bench.stderr
        assert '"verified": true' in bench.stdout
        assert (tmp_path / "BENCH_throughput.json").exists()
        assert "server round-trip" in (
            tmp_path / "BENCH_throughput.json"
        ).read_text()

        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=30)
        assert server.returncode == 0, out
        assert "drained and stopped" in out
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate(timeout=10)
