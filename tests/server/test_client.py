"""Client-library semantics: connect retry/backoff, request timeouts,
and failure propagation onto pending flows."""

import asyncio
import time

import pytest

from repro.server import ConnectFailed, ScanClient

from tests.server.conftest import running_server


def run(coro):
    return asyncio.run(coro)


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
def test_connect_retries_until_server_appears():
    """The client dials before the server binds; retry/backoff rides
    over the gap — start order doesn't matter."""

    async def main():
        from repro.server import ScanServer

        port = _free_port()
        server = ScanServer(port=port)

        async def late_start():
            await asyncio.sleep(0.2)
            await server.start()

        starter = asyncio.ensure_future(late_start())
        client = ScanClient(
            "127.0.0.1", port,
            connect_retries=20, retry_backoff=0.05,
        )
        await client.connect()
        assert client.connected
        got = await client.scan_stream(
            b"<methodCall><methodName>buy</methodName>"
            b"<params></params></methodCall> "
        )
        assert [m.port for m in got] == [1]
        await client.close()
        await starter
        await server.stop(drain=False)

    run(main())


def test_connect_fails_after_retry_budget():
    async def main():
        client = ScanClient(
            "127.0.0.1", _free_port(),
            connect_retries=3, retry_backoff=0.01,
        )
        started = time.monotonic()
        with pytest.raises(ConnectFailed, match="3 attempts"):
            await client.connect()
        # Exponential backoff actually waited between attempts.
        assert time.monotonic() - started >= 0.01 + 0.02

    run(main())


def test_connect_backoff_is_capped_and_jittered(monkeypatch):
    """Doubling stops at ``max_backoff`` and every sleep carries
    ±25 % jitter — a flapping backend can't push a client into
    minutes-long lockstep sleeps."""

    async def main():
        sleeps = []
        real_sleep = asyncio.sleep

        async def fake_sleep(delay, *args, **kwargs):
            sleeps.append(delay)
            await real_sleep(0)

        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        client = ScanClient(
            "127.0.0.1", _free_port(),
            connect_retries=8, retry_backoff=0.05, max_backoff=0.2,
            connect_timeout=0.5,
        )
        with pytest.raises(ConnectFailed, match="8 attempts"):
            await client.connect()
        assert len(sleeps) == 8
        # Nominal schedule 0.05, 0.1, 0.2, 0.2, ... — every sleep is
        # within jitter range of its nominal value, never above the
        # cap's +25 % ceiling.
        assert max(sleeps) <= 0.2 * 1.25 + 1e-9
        assert sleeps[0] >= 0.05 * 0.75 - 1e-9
        for capped in sleeps[2:]:
            assert 0.2 * 0.75 - 1e-9 <= capped <= 0.2 * 1.25 + 1e-9

    run(main())


def test_finish_times_out_when_no_result_arrives():
    """A FINISH_FLOW the server never answers (unopened flow id is
    answered with ERROR; here we silence it by talking to a raw
    listener that says HELLO then nothing)."""

    async def main():
        async def mute_server(reader, writer):
            from repro.server import protocol
            from repro.server.server import _read_frame

            await _read_frame(reader, 1 << 20)  # client HELLO
            writer.write(protocol.encode_hello())
            await writer.drain()
            while await _read_frame(reader, 1 << 20) is not None:
                pass  # swallow everything, answer nothing

        listener = await asyncio.start_server(
            mute_server, "127.0.0.1", 0
        )
        port = listener.sockets[0].getsockname()[1]
        client = ScanClient("127.0.0.1", port, request_timeout=0.2)
        await client.connect()
        flow = await client.open_flow()
        await flow.send(b"data")
        with pytest.raises(TimeoutError, match="no final RESULT"):
            await flow.finish()
        await client.close()
        listener.close()
        await listener.wait_closed()

    run(main())


def test_server_vanishing_fails_pending_flows():
    async def main():
        async with running_server() as server:
            host, port = server.address
            client = ScanClient(host, port)
            await client.connect()
            flow = await client.open_flow()
            await flow.send(b"<methodCall><methodName>bu")
            # Cut every connection without drain.
            for conn in list(server._connections.values()):
                conn.writer.transport.abort()
            with pytest.raises((ConnectionError, OSError)):
                await flow.finish(timeout=5.0)
            await client.close()

    run(main())


def test_concurrent_flows_on_one_connection_interleave():
    """Many flows multiplexed on one connection each get exactly their
    own results (ids don't cross wires)."""

    async def main():
        from repro.apps.xmlrpc import ContentBasedRouter, MethodCall

        router = ContentBasedRouter()
        payloads = {
            name: MethodCall(name).encode() + b" "
            for name in ("buy", "sell", "deposit", "withdraw")
        }
        expected = {n: router.route(p) for n, p in payloads.items()}
        async with running_server() as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                results = await asyncio.gather(
                    *(
                        client.scan_stream(p, chunk_size=3)
                        for p in payloads.values()
                    )
                )
        assert dict(zip(payloads, results)) == expected

    run(main())
