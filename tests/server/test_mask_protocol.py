"""Mask flows over the framed wire protocol.

The acceptance invariant: every (state, mask) a live ``ScanServer``
streams back over OPEN_MASK/ADVANCE must be byte-for-byte what an
in-process :class:`~repro.apps.structgen.MaskSession` on the same
table produces — through explicit in-memory tables and through
registry-backed lazy loading — plus the fault paths (unknown
vocabulary, DATA on a mask flow, invalid token) and the admin
endpoint's structgen exposition.
"""

import asyncio
import json
import time

import pytest

from repro.apps.structgen import MaskSession, build_mask_table, synthetic_vocab
from repro.grammar.examples import xmlrpc
from repro.server import ScanClient, protocol, run_mask_load
from repro.server.loadgen import _set_bits
from repro.server.protocol import ErrorCode, ServerFault
from repro.service import Registry

from tests.server.conftest import running_server


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def table():
    return build_mask_table(xmlrpc(), synthetic_vocab(size=384, seed=7))


async def _http_get(address, path: str) -> tuple[str, str]:
    reader, writer = await asyncio.open_connection(*address)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _sep, body = raw.decode("utf-8").partition("\r\n\r\n")
    return head.splitlines()[0].split(" ", 1)[1], body


# ----------------------------------------------------------------------
def test_mask_flow_matches_local_session(table):
    """Seeded decode over TCP ≡ in-process session, every reply."""

    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            local = MaskSession(table)
            async with ScanClient(host, port) as client:
                flow = await client.open_mask_flow(table.vocab_hash)
                assert flow.state == local.state
                assert flow.mask == local.mask()
                import random

                rng = random.Random(2006)
                for _ in range(60):
                    valid = _set_bits(local.mask())
                    if not valid:
                        break
                    token_id = rng.choice(valid)
                    state, row = await flow.advance(token_id)
                    assert state == local.advance(token_id)
                    assert row == local.mask()
                await flow.close()
            snapshot = server.stats()
            assert snapshot["counters"]["structgen.sessions_opened"] == 1
            assert snapshot["counters"]["structgen.sessions_closed"] == 1
            assert snapshot["structgen"]["sessions_open"] == 0
            assert snapshot["structgen"]["tables"][0]["vocab_size"] == 384

    run(main())


def test_unknown_vocab_refused(table):
    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                with pytest.raises(ServerFault) as info:
                    await client.open_mask_flow("ab" * 32)
                assert info.value.code == ErrorCode.UNKNOWN_VOCAB
                assert "precompute" in str(info.value)

    run(main())


def test_data_on_mask_flow_rejected(table):
    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                flow = await client.open_mask_flow(table.vocab_hash)
                await client._send(
                    protocol.encode_data(flow.flow_id, b"<x>")
                )
                with pytest.raises(ServerFault) as info:
                    await flow.advance(0, timeout=5.0)
                assert info.value.code == ErrorCode.BAD_FRAME

    run(main())


def test_invalid_token_faults_the_flow(table):
    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            local = MaskSession(table)
            async with ScanClient(host, port) as client:
                flow = await client.open_mask_flow(table.vocab_hash)
                invalid = next(
                    i
                    for i in range(len(table.vocab))
                    if i not in set(_set_bits(local.mask()))
                )
                with pytest.raises(ServerFault) as info:
                    await flow.advance(invalid, timeout=5.0)
                assert info.value.code == ErrorCode.BAD_TOKEN

    run(main())


def test_drain_does_not_wait_for_mask_flows(table):
    """Interactive decode sessions never 'finish'; stop(drain=True)
    must not hold the server open on their account."""

    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            client = ScanClient(host, port)
            await client.connect()
            await client.open_mask_flow(table.vocab_hash)
            started = time.perf_counter()
            await server.stop(drain=True, timeout=10.0)
            assert time.perf_counter() - started < 5.0
            await client.close()

    run(main())


# ----------------------------------------------------------------------
def test_registry_backed_masks_and_admin(tmp_path):
    """Lazy mask loading from the registry store: cold start once,
    served identically, visible on /stats and /metrics."""
    registry = Registry(str(tmp_path / "store"))
    ref = registry.publish("xmlrpc", xmlrpc())
    vocab = synthetic_vocab(size=384, seed=7)
    registry.publish_masks(ref, vocab)
    table = registry.load_masks(ref, vocab.vocab_hash)

    async def main():
        async with running_server(
            registry=str(tmp_path / "store"),
            grammar=ref,
            admin_port=0,
        ) as server:
            host, port = server.address
            local = MaskSession(table)
            async with ScanClient(host, port) as client:
                flow = await client.open_mask_flow(vocab.vocab_hash)
                assert flow.mask == local.mask()
                import random

                rng = random.Random(5)
                for _ in range(20):
                    valid = _set_bits(local.mask())
                    token_id = rng.choice(valid)
                    state, row = await flow.advance(token_id)
                    assert state == local.advance(token_id)
                    assert row == local.mask()
                await flow.close()

            status, body = await _http_get(
                server.admin_address, "/stats"
            )
            assert status == "200 OK"
            stats = json.loads(body)
            assert stats["structgen"]["tables"][0]["vocab_size"] == 384
            assert (
                stats["histograms"]["structgen.coldstart_ms"]["count"]
                == 1
            )
            status, body = await _http_get(
                server.admin_address, "/metrics"
            )
            assert status == "200 OK"
            assert "repro_structgen_masks_served" in body
            assert "repro_structgen_coldstart_ms_bucket" in body

    run(main())


def test_unknown_vocab_negative_cache(tmp_path):
    """A vocab hash with no artifact is refused (and the registry is
    not re-probed per OPEN_MASK — the miss is cached)."""
    registry = Registry(str(tmp_path / "store"))
    ref = registry.publish("xmlrpc", xmlrpc())

    async def main():
        async with running_server(
            registry=str(tmp_path / "store"), grammar=ref
        ) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                for _ in range(2):
                    with pytest.raises(ServerFault) as info:
                        await client.open_mask_flow("cd" * 32)
                    assert info.value.code == ErrorCode.UNKNOWN_VOCAB
            assert len(server._mask_misses) == 1

    run(main())


# ----------------------------------------------------------------------
def test_load_generator_verifies_byte_for_byte(table):
    """The acceptance check: the mask load generator's every remote
    reply equals the in-process session, over real TCP."""

    async def main():
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            report = await run_mask_load(
                host, port, table, sessions=3, steps=25
            )
        assert report["verified"] is True
        assert report["failures"] == []
        assert report["mismatches"] == []
        assert report["advances"] > 0
        assert report["masks_per_s"] > 0

    run(main())


def test_mask_flows_with_service_pool(table, streams, expected):
    """Mask flows stay on the event loop even when scans run through
    the sharded worker pool — both kinds multiplex one connection."""

    async def main():
        async with running_server(
            mask_tables=[table], workers=1
        ) as server:
            host, port = server.address
            local = MaskSession(table)
            async with ScanClient(host, port) as client:
                flow = await client.open_mask_flow(table.vocab_hash)
                scan = await client.open_flow()
                await scan.send(streams["flow-0"])
                assert flow.mask == local.mask()
                token_id = _set_bits(local.mask())[0]
                state, row = await flow.advance(token_id)
                assert state == local.advance(token_id)
                assert row == local.mask()
                results = await scan.finish()
                assert results == expected["flow-0"]
                await flow.close()
            snapshot = server.stats()
            assert snapshot["structgen"]["sessions_open"] == 0

    run(main())
