"""Shared helpers for the server tests: seeded workloads, ground
truth, and an in-loop server harness (no pytest-asyncio dependency —
each test owns its loop via ``asyncio.run``)."""

from __future__ import annotations

import contextlib

import pytest

from repro.apps.xmlrpc import ContentBasedRouter, WorkloadGenerator


@pytest.fixture(scope="module")
def streams() -> dict[str, bytes]:
    """Seeded multi-flow XML-RPC workload (deterministic)."""
    generator = WorkloadGenerator(seed=77)
    return {f"flow-{i}": generator.stream(4)[0] for i in range(5)}


@pytest.fixture(scope="module")
def expected(streams):
    """Single-process ground truth for the differential checks."""
    router = ContentBasedRouter()
    return {name: router.route(data) for name, data in streams.items()}


@contextlib.asynccontextmanager
async def running_server(**kwargs):
    """An async context manager yielding a started ScanServer bound to
    an ephemeral localhost port; always stopped on exit."""
    from repro.server import ScanServer

    server = ScanServer(port=0, **kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.stop(drain=False, timeout=5.0)
