"""Robustness under fault: idle-timeout reaping, oversized-frame
rejection, slow-consumer backpressure (bounded server memory), pool
backpressure pauses, and graceful drain delivering in-flight RESULTs."""

import asyncio

from repro.server import ScanClient, ServerFault, protocol
from repro.server.protocol import ErrorCode, FrameType

from tests.server.conftest import running_server


def run(coro):
    return asyncio.run(coro)


async def _read_frame(reader, max_frame=1 << 20):
    from repro.server.server import _read_frame as read

    return await read(reader, max_frame)


# ----------------------------------------------------------------------
# idle timeout
# ----------------------------------------------------------------------
def test_idle_connection_reaped_with_error_frame():
    async def main():
        async with running_server(idle_timeout=0.15) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_hello())
            await writer.drain()
            frame = await _read_frame(reader)  # server HELLO
            assert frame.type == FrameType.HELLO
            # ... then send nothing: the server must reap us.
            frame = await asyncio.wait_for(_read_frame(reader), 2.0)
            assert frame.type == FrameType.ERROR
            flow, code, message = protocol.decode_error(frame)
            assert code == ErrorCode.IDLE_TIMEOUT
            assert flow == protocol.CONNECTION_FLOW
            assert await asyncio.wait_for(_read_frame(reader), 2.0) is None
            writer.close()
            assert server.stats()["counters"]["server.timeouts.idle"] == 1

    run(main())


def test_idle_timeout_discards_flow_state():
    async def main():
        async with running_server(idle_timeout=0.15) as server:
            host, port = server.address
            client = ScanClient(host, port)
            await client.connect()
            flow = await client.open_flow()
            await flow.send(b"<methodCall><methodName>bu")
            await asyncio.sleep(0.5)  # idle past the limit
            assert not server._connections  # reaped server-side
            await client.close()

    run(main())


# ----------------------------------------------------------------------
# oversized frames
# ----------------------------------------------------------------------
def test_oversized_frame_rejected_and_connection_closed():
    async def main():
        async with running_server(max_frame=4096) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_hello())
            await writer.drain()
            await _read_frame(reader)  # server HELLO
            writer.write(protocol.encode_open_flow(1))
            writer.write(protocol.encode_data(1, b"x" * 8192))
            await writer.drain()
            frame = await asyncio.wait_for(_read_frame(reader), 2.0)
            assert frame.type == FrameType.ERROR
            _flow, code, _msg = protocol.decode_error(frame)
            assert code == ErrorCode.FRAME_TOO_LARGE
            assert await asyncio.wait_for(_read_frame(reader), 2.0) is None
            writer.close()

    run(main())


def test_client_splits_data_to_server_frame_limit(streams, expected):
    """A client talking to a small-frame server transparently splits
    chunks, so large sends still round-trip correctly."""

    async def main():
        async with running_server(max_frame=512) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                assert client.server_max_frame == 512
                got = await client.scan_stream(
                    streams["flow-0"], chunk_size=100_000
                )
        assert got == expected["flow-0"]

    run(main())


# ----------------------------------------------------------------------
# protocol discipline
# ----------------------------------------------------------------------
def test_version_mismatch_is_refused():
    async def main():
        async with running_server() as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_hello(version=99))
            await writer.drain()
            frame = await asyncio.wait_for(_read_frame(reader), 2.0)
            assert frame.type == FrameType.ERROR
            _f, code, _m = protocol.decode_error(frame)
            assert code == ErrorCode.VERSION_MISMATCH
            writer.close()

    run(main())


def test_data_for_unopened_flow_is_flow_error():
    async def main():
        async with running_server() as server:
            host, port = server.address
            client = ScanClient(host, port)
            await client.connect()
            # Bypass open_flow: hand-craft DATA for an unknown id.
            await client._send(protocol.encode_data(42, b"zzz"))
            flow = await client.open_flow()
            got = await flow.finish()  # connection still healthy
            assert got == []
            await client.close()

    run(main())


def test_duplicate_open_flow_fails_that_flow():
    async def main():
        async with running_server() as server:
            host, port = server.address
            client = ScanClient(host, port)
            await client.connect()
            flow = await client.open_flow()
            await client._send(protocol.encode_open_flow(flow.flow_id))
            await asyncio.sleep(0.05)
            try:
                await flow.finish(timeout=2.0)
                raise AssertionError("expected ServerFault")
            except ServerFault as fault:
                assert fault.code == ErrorCode.DUPLICATE_FLOW
            await client.close()

    run(main())


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------
def test_slow_consumer_does_not_grow_server_memory(streams):
    """A client that stops reading RESULT frames suspends the server's
    writer at the transport buffer bound — the handler stops reading,
    and no unbounded result queue forms server-side."""

    async def main():
        high_water = 8 * 1024
        async with running_server(write_high_water=high_water) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_hello())
            await writer.drain()
            await _read_frame(reader)  # server HELLO
            writer.write(protocol.encode_open_flow(1))
            # Pump many result-producing messages without ever reading.
            data = streams["flow-0"] * 8
            for start in range(0, len(data), 1024):
                writer.write(
                    protocol.encode_data(1, data[start : start + 1024])
                )
                await writer.drain()
                if server.stats()["counters"]["server.tx.bytes"] > high_water:
                    break
            await asyncio.sleep(0.3)
            # The server connection's outbound buffer is capped at the
            # transport bound (plus at most one in-flight frame).
            conns = list(server._connections.values())
            assert conns, "connection should still be alive (paused)"
            buffered = conns[0].writer.transport.get_write_buffer_size()
            assert buffered <= high_water + protocol.DEFAULT_MAX_FRAME
            # Start consuming: everything completes normally.
            writer.write(protocol.encode_finish_flow(1))
            await writer.drain()
            final = None
            while final is None:
                frame = await asyncio.wait_for(_read_frame(reader), 5.0)
                assert frame.type == FrameType.RESULT
                _flow, is_final, _items = protocol.decode_result(frame)
                final = True if is_final else None
            writer.close()

    run(main())


def test_pool_queue_full_pauses_reads_not_memory(streams, expected):
    """With a tiny shard queue the server hits QueueFull and paces the
    producer (counted waits) instead of buffering chunks; results are
    still exact."""

    async def main():
        async with running_server(workers=1, queue_depth=2) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                got = {
                    name: await client.scan_stream(data, chunk_size=64)
                    for name, data in streams.items()
                }
            waits = server.stats()["counters"].get(
                "server.backpressure.waits", 0
            )
        assert got == expected
        assert waits > 0

    run(main())


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
def test_graceful_drain_delivers_inflight_results(streams, expected):
    """stop(drain=True) with FINISH_FLOWs in flight through the pool:
    every final RESULT frame arrives before the close."""

    async def main():
        from repro.server import ScanServer

        server = ScanServer(port=0, workers=2)
        await server.start()
        host, port = server.address
        client = ScanClient(host, port)
        await client.connect()
        flows = {}
        for name, data in streams.items():
            flow = await client.open_flow()
            await flow.send(data)
            flows[name] = flow
        finishes = {
            name: asyncio.ensure_future(flow.finish())
            for name, flow in flows.items()
        }
        # Wait until the server has *accepted* every frame (HELLO +
        # 3 per flow) — flows still unread when drain starts may
        # legitimately be refused with DRAINING instead.
        while (
            server.stats()["counters"].get("server.rx.frames", 0)
            < 1 + 3 * len(flows)
        ):
            await asyncio.sleep(0.001)
        await server.stop(drain=True, timeout=30.0)
        got = {name: await fut for name, fut in finishes.items()}
        assert got == expected
        await client.close()

    run(main())


def test_drain_rejects_new_flows_but_completes_open_ones(
    streams, expected
):
    """During drain, OPEN_FLOW is refused with DRAINING, while a flow
    opened beforehand still streams to completion."""

    async def main():
        from repro.server import ScanServer

        server = ScanServer(port=0)
        await server.start()
        host, port = server.address
        client = ScanClient(host, port)
        await client.connect()
        flow = await client.open_flow()
        await flow.send(streams["flow-0"][:100])
        # The flow must be accepted *before* the drain begins.
        while not server.stats()["counters"].get("server.flows.opened"):
            await asyncio.sleep(0.001)
        stopper = asyncio.ensure_future(
            server.stop(drain=True, timeout=10.0)
        )
        await asyncio.sleep(0.05)
        # New work is refused...
        refused = await client.open_flow()
        try:
            await refused.finish(timeout=2.0)
            raise AssertionError("expected ServerFault(DRAINING)")
        except ServerFault as fault:
            assert fault.code == ErrorCode.DRAINING
        # ... while the pre-drain flow finishes exactly.
        await flow.send(streams["flow-0"][100:])
        got = await flow.finish(timeout=5.0)
        assert got == expected["flow-0"]
        await stopper
        await client.close()

    run(main())


def test_drain_waits_for_inflight_mask_op():
    """Regression: a BATCH_ADVANCE/ADVANCE whose reply write is
    backpressured must get its one reply out before GOODBYE —
    mask/beam ops were invisible to the drain accounting and a
    stop(drain=True) could cut the connection mid-op."""

    async def main():
        from repro.apps.structgen import build_mask_table, synthetic_vocab
        from repro.grammar.examples import xmlrpc

        table = build_mask_table(xmlrpc(), synthetic_vocab(size=384, seed=7))
        async with running_server(mask_tables=[table]) as server:
            host, port = server.address
            client = ScanClient(host, port)
            await client.connect()
            flow = await client.open_mask_flow(table.vocab_hash)
            token = next(
                t for t in range(384) if flow.mask[t // 8] >> (t % 8) & 1
            )

            # Simulate write-side backpressure: the next reply stalls
            # inside the server's send until we release it.
            conn = next(iter(server._connections.values()))
            real_send = conn.send
            stalled, release = asyncio.Event(), asyncio.Event()
            first = True

            async def stalling_send(frame_bytes):
                nonlocal first
                if first:
                    first = False
                    stalled.set()
                    await release.wait()
                await real_send(frame_bytes)

            conn.send = stalling_send
            reply = asyncio.ensure_future(flow.advance(token))
            await stalled.wait()

            stopper = asyncio.ensure_future(
                server.stop(drain=True, timeout=10.0)
            )
            # Well past the 50 ms rx-quiescence window: only the op
            # accounting can be holding the drain open now.
            await asyncio.sleep(0.15)
            assert not stopper.done(), "drain cut an in-flight mask op"

            release.set()
            state, row = await reply  # the reply made it out
            assert row == bytes(table.mask_row(state))
            await stopper
            await client.close()

    run(main())
