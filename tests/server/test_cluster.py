"""The cluster tier: consistent-hash ring and the ScanProxy.

Ring properties (determinism, minimal remap on membership change),
backend-spec parsing, and the proxy's end-to-end contract: scan, mask
and beam flows through the proxy are byte-for-byte identical to flows
against a single server, the aggregated admin endpoint merges backend
expositions under ``backend="host:port"`` labels, and the protocol
fault paths (duplicate open, operating on an unknown flow) reply with
the same typed errors a bare :class:`~repro.server.ScanServer` would.
"""

import asyncio
import contextlib
import json

import pytest

from repro.apps.structgen import MaskSession, build_mask_table, synthetic_vocab
from repro.apps.xmlrpc import ContentBasedRouter, MethodCall
from repro.grammar.examples import xmlrpc
from repro.server import (
    BackendSpec,
    HashRing,
    ScanClient,
    ScanProxy,
    ScanServer,
    parse_backend,
    protocol,
)
from repro.server.cluster import _http_get
from repro.server.loadgen import _set_bits
from repro.server.protocol import ErrorCode, ServerFault


def run(coro):
    return asyncio.run(coro)


async def _read_frame(reader, max_frame=1 << 20):
    from repro.server.server import _read_frame as read

    return await read(reader, max_frame)


@pytest.fixture(scope="module")
def table():
    return build_mask_table(xmlrpc(), synthetic_vocab(size=384, seed=7))


@contextlib.asynccontextmanager
async def running_cluster(table, n=2, *, admin=False, **proxy_kwargs):
    """N mask-serving backends behind a started ScanProxy."""
    servers = []
    for _ in range(n):
        server = ScanServer(
            port=0, mask_tables=[table], admin_port=0 if admin else None
        )
        await server.start()
        servers.append(server)
    if admin:
        backends = [
            (s.address[0], s.address[1], s.admin_address[1]) for s in servers
        ]
    else:
        backends = [s.address for s in servers]
    proxy = ScanProxy(backends, port=0, **proxy_kwargs)
    await proxy.start()
    try:
        yield proxy, servers
    finally:
        await proxy.stop(drain=False)
        for server in servers:
            if not server._stopped.is_set():
                await server.stop(drain=False)


# ----------------------------------------------------------------------
# the ring
# ----------------------------------------------------------------------
def _ring(members):
    ring = HashRing()
    for member in members:
        ring.add(member)
    return ring


def test_ring_lookup_is_deterministic():
    ring = _ring(["a:1", "b:2", "c:3"])
    other = _ring(["c:3", "a:1", "b:2"])  # insertion order irrelevant
    keys = [f"flow-{i}" for i in range(200)]
    owners = [ring.lookup(k) for k in keys]
    assert owners == [other.lookup(k) for k in keys]
    assert set(owners) == {"a:1", "b:2", "c:3"}


def test_ring_removal_only_remaps_the_removed_member():
    ring = _ring(["a:1", "b:2", "c:3", "d:4"])
    keys = [f"conn-{i}/flow-{j}" for i in range(40) for j in range(10)]
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("c:3")
    for key, owner in before.items():
        if owner == "c:3":
            assert ring.lookup(key) != "c:3"
        else:
            assert ring.lookup(key) == owner, key


def test_ring_preference_walks_all_members():
    ring = _ring(["a:1", "b:2", "c:3"])
    pref = ring.preference("some-key")
    assert sorted(pref) == ["a:1", "b:2", "c:3"]
    assert pref[0] == ring.lookup("some-key")


def test_ring_spreads_keys():
    members = [f"b{i}:9" for i in range(4)]
    ring = _ring(members)
    counts = {m: 0 for m in members}
    for i in range(2000):
        counts[ring.lookup(f"key-{i}")] += 1
    # every member owns a non-trivial share (vnodes smooth the split)
    assert all(count > 200 for count in counts.values()), counts


def test_parse_backend_forms():
    assert parse_backend("host:9431") == BackendSpec("host", 9431, None)
    assert parse_backend("host:9431:9911") == BackendSpec("host", 9431, 9911)
    assert parse_backend(("h", 1)) == BackendSpec("h", 1, None)
    assert parse_backend(("h", 1, 2)) == BackendSpec("h", 1, 2)
    spec = BackendSpec("h", 1, 2)
    assert parse_backend(spec) is spec
    assert spec.name == "h:1"
    with pytest.raises(ValueError):
        parse_backend("no-port")


# ----------------------------------------------------------------------
# proxied flows ≡ direct flows
# ----------------------------------------------------------------------
def test_proxied_scan_matches_direct(table):
    """Concurrent scan flows through the proxy produce exactly the
    single-process router's events, and both backends take load."""

    async def scenario():
        router = ContentBasedRouter()
        payloads = [
            MethodCall(name).encode() + b" "
            for name in ("buy", "sell", "deposit", "withdraw",
                         "transfer", "query")
        ]
        async with running_cluster(table, n=2) as (proxy, servers):
            async with ScanClient(*proxy.address) as client:
                results = await asyncio.gather(
                    *(client.scan_stream(p, chunk_size=7) for p in payloads)
                )
            assert results == [router.route(p) for p in payloads]
            opened = [
                s.stats()["counters"].get("server.flows.opened", 0)
                for s in servers
            ]
            assert sum(opened) == len(payloads)

    run(scenario())


def test_proxied_mask_flow_matches_local_session(table):
    async def scenario():
        async with running_cluster(table, n=2) as (proxy, _servers):
            async with ScanClient(*proxy.address) as client:
                flow = await client.open_mask_flow(table.vocab_hash)
                local = MaskSession(table)
                assert flow.mask == local.mask()
                for step in range(40):
                    valid = _set_bits(local.mask())
                    if not valid:
                        break
                    token = valid[step % len(valid)]
                    state, row = await flow.advance(token)
                    assert state == local.advance(token), f"step {step}"
                    assert row == local.mask(), f"step {step}"
                await flow.close()

    run(scenario())


def test_proxied_beam_flow_matches_mirrors(table):
    """Beam deltas are relayed raw — the client's decoded rows must
    still track per-lane mirrors through advances, a fork and a
    rollback."""

    async def scenario():
        async with running_cluster(table, n=2) as (proxy, _servers):
            async with ScanClient(*proxy.address) as client:
                flow = await client.open_beam_flow(table.vocab_hash, 4)
                mirror = [MaskSession(table) for _ in range(4)]
                assert flow.rows == [m.mask() for m in mirror]
                for step in range(20):
                    ids = []
                    for m in mirror:
                        valid = _set_bits(m.mask())
                        if not valid:
                            return
                        ids.append(valid[0])
                    await flow.advance(ids)
                    for m, token in zip(mirror, ids):
                        m.advance(token)
                    assert flow.states == tuple(m.state for m in mirror)
                    assert flow.rows == [m.mask() for m in mirror], step
                await flow.fork(0)
                assert flow.width == 5
                await flow.rollback(1)
                assert flow.width == 4
                await flow.close()

    run(scenario())


# ----------------------------------------------------------------------
# fault paths mirror the single-server contract
# ----------------------------------------------------------------------
def test_proxy_duplicate_and_unknown_flow_errors(table):
    async def scenario():
        async with running_cluster(table, n=2) as (proxy, _servers):
            reader, writer = await asyncio.open_connection(*proxy.address)
            writer.write(protocol.encode_hello())
            await writer.drain()
            await _read_frame(reader)  # proxy HELLO

            writer.write(protocol.encode_open_flow(7))
            writer.write(protocol.encode_open_flow(7))  # duplicate
            await writer.drain()
            frame = await asyncio.wait_for(_read_frame(reader), 5.0)
            flow_id, code, _detail = protocol.decode_error(frame)
            assert (flow_id, code) == (7, ErrorCode.DUPLICATE_FLOW)

            writer.write(protocol.encode_data(99, b"zz"))  # never opened
            await writer.drain()
            frame = await asyncio.wait_for(_read_frame(reader), 5.0)
            flow_id, code, _detail = protocol.decode_error(frame)
            assert (flow_id, code) == (99, ErrorCode.UNKNOWN_FLOW)
            writer.close()

    run(scenario())


def test_proxy_refuses_when_no_backend_healthy(table):
    """All backends down → opening a flow yields a typed FAILOVER
    error instead of a hang."""

    async def scenario():
        async with running_cluster(
            table, n=1, health_interval=0.1
        ) as (proxy, servers):
            await servers[0].stop(drain=False)
            await asyncio.sleep(0.4)  # let the prober eject it
            async with ScanClient(*proxy.address) as client:
                flow = await client.open_flow()
                await flow.send(b"data")
                with pytest.raises(ServerFault) as info:
                    await flow.finish(timeout=10.0)
                assert info.value.code == ErrorCode.FAILOVER

    run(scenario())


# ----------------------------------------------------------------------
# aggregated admin endpoint
# ----------------------------------------------------------------------
def test_proxy_admin_aggregates_backends(table):
    async def scenario():
        async with running_cluster(
            table, n=2, admin=True, admin_port=0
        ) as (proxy, _servers):
            # drive a little traffic so counters are non-zero
            async with ScanClient(*proxy.address) as client:
                await client.scan_stream(
                    MethodCall("buy").encode(), chunk_size=5
                )

            host, port = proxy.admin_address
            status, body = await _http_get(host, port, "/healthz")
            assert status == 200 and body == "ok\n"

            status, body = await _http_get(host, port, "/metrics")
            assert status == 200
            # proxy's own series plus relabeled backend series
            assert "repro_proxy_flows_scan" in body
            assert 'backend="' in body
            # merged exposition keeps one TYPE line per metric
            lines = body.splitlines()
            type_lines = [l for l in lines if l.startswith("# TYPE ")]
            assert len(type_lines) == len(set(type_lines))

            status, body = await _http_get(host, port, "/stats")
            assert status == 200
            stats = json.loads(body)
            assert len(stats["backends"]) == 2
            for info in stats["backends"].values():
                assert info["healthy"] is True
                assert info["stats"] is not None

    run(scenario())


def test_proxy_healthz_degrades_to_503(table):
    async def scenario():
        async with running_cluster(
            table, n=1, admin_port=0, health_interval=0.1
        ) as (proxy, servers):
            await servers[0].stop(drain=False)
            await asyncio.sleep(0.4)
            host, port = proxy.admin_address
            status, body = await _http_get(host, port, "/healthz")
            assert status == 503
            assert "no healthy backends" in body

    run(scenario())
