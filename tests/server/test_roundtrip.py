"""Differential correctness over TCP: results streamed through the
framed protocol must be byte-for-byte what the single-process
``ContentBasedRouter.route`` produces — multi-flow, chunked at
adversarial boundaries, through both the in-process backend and the
sharded service pool."""

import asyncio

import pytest

from repro.server import ScanClient
from repro.service import TaggerSpec

from tests.server.conftest import running_server


def run(coro):
    return asyncio.run(coro)


async def _scan_all(server, streams, chunk_size):
    """One connection, all flows interleaved round-robin at
    ``chunk_size`` boundaries (the arrival pattern multiplexing is
    for), results collected per flow."""
    host, port = server.address
    async with ScanClient(host, port) as client:
        flows = {
            name: (await client.open_flow(), data)
            for name, data in streams.items()
        }
        offset = 0
        while any(offset < len(d) for _f, d in flows.values()):
            for _name, (flow, data) in flows.items():
                if offset < len(data):
                    await flow.send(data[offset : offset + chunk_size])
            offset += chunk_size
        return {
            name: await flow.finish()
            for name, (flow, _data) in flows.items()
        }


# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_size", [1, 7, 64, 4096])
def test_in_process_roundtrip_matches_route(streams, expected, chunk_size):
    """The acceptance invariant, in-process backend: every adversarial
    chunking merges to the exact single-process results."""

    async def main():
        async with running_server() as server:
            got = await _scan_all(server, streams, chunk_size)
        assert got == expected

    run(main())


def test_service_pool_roundtrip_matches_route(streams, expected):
    """The acceptance invariant through the sharded worker pool."""

    async def main():
        async with running_server(workers=2) as server:
            got = await _scan_all(server, streams, 313)
        assert got == expected

    run(main())


def test_many_connections_share_one_server(streams, expected):
    """Flow ids are connection-scoped: concurrent connections reusing
    the same small ids must not collide."""

    async def one(server, name, data):
        host, port = server.address
        async with ScanClient(host, port) as client:
            return name, await client.scan_stream(data, chunk_size=100)

    async def main():
        async with running_server() as server:
            pairs = await asyncio.gather(
                *(one(server, n, d) for n, d in streams.items())
            )
        assert dict(pairs) == expected

    run(main())


def test_partial_results_stream_before_finish(streams, expected):
    """In-process flows emit RESULT frames as messages complete, not
    only at FINISH_FLOW: the client sees partials accumulate."""

    async def main():
        name = "flow-0"
        data = streams[name]
        async with running_server() as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                flow = await client.open_flow()
                await flow.send(data)  # all bytes, no finish yet
                await asyncio.sleep(0.05)
                partial = len(flow.partial)
                final = await flow.finish()
        # Every whole message was already delivered pre-finish (the
        # last one may await its end-of-data look-ahead byte).
        assert partial >= len(expected[name]) - 1
        assert final == expected[name]

    run(main())


def test_tagger_spec_events_over_wire(streams):
    """The wire carries whatever the spec's sessions emit: a
    TaggerSpec server streams raw DetectEvents."""
    from repro.core.compiled import CompiledTagger
    from repro.grammar.examples import xmlrpc

    data = streams["flow-1"]
    local = CompiledTagger(xmlrpc()).events(data)

    async def main():
        async with running_server(spec=TaggerSpec(xmlrpc())) as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                got = await client.scan_stream(data, chunk_size=501)
        assert got == local

    run(main())


def test_server_stats_count_flows(streams):
    async def main():
        async with running_server() as server:
            host, port = server.address
            async with ScanClient(host, port) as client:
                await client.scan_stream(streams["flow-0"], 256)
            stats = server.stats()
        counters = stats["counters"]
        assert counters["server.flows.opened"] == 1
        assert counters["server.flows.finished"] == 1
        assert counters["server.connections.opened"] == 1
        assert counters["server.rx.frames"] > 2

    run(main())
