"""Wire-protocol framing: encode/decode round trips, incremental
parsing at adversarial split points, and the frame-size limit."""

import struct

import pytest

from repro.server.protocol import (
    CONNECTION_FLOW,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_data,
    decode_error,
    decode_finish_flow,
    decode_hello,
    decode_open_flow,
    decode_result,
    encode_data,
    encode_error,
    encode_finish_flow,
    encode_goodbye,
    encode_hello,
    encode_open_flow,
    encode_result,
)


def decode_all(blob: bytes, max_frame: int = 1 << 20):
    return FrameDecoder(max_frame).feed(blob)


# ----------------------------------------------------------------------
def test_hello_roundtrip():
    (frame,) = decode_all(encode_hello(PROTOCOL_VERSION, 12345))
    assert frame.type == FrameType.HELLO
    assert decode_hello(frame) == (PROTOCOL_VERSION, 12345)


def test_open_data_finish_roundtrip():
    blob = (
        encode_open_flow(7)
        + encode_data(7, b"<methodCall>")
        + encode_finish_flow(7)
    )
    frames = decode_all(blob)
    assert [f.type for f in frames] == [
        FrameType.OPEN_FLOW, FrameType.DATA, FrameType.FINISH_FLOW,
    ]
    assert decode_open_flow(frames[0]) == 7
    assert decode_data(frames[1]) == (7, b"<methodCall>")
    assert decode_finish_flow(frames[2]) == 7


def test_result_roundtrip_carries_objects():
    items = [{"port": 1, "payload": b"x"}, None, (1, 2)]
    (frame,) = decode_all(encode_result(9, True, items))
    assert decode_result(frame) == (9, True, items)
    (frame,) = decode_all(encode_result(9, False, []))
    assert decode_result(frame) == (9, False, [])


def test_error_roundtrip_unicode_message():
    blob = encode_error(CONNECTION_FLOW, ErrorCode.IDLE_TIMEOUT, "idle ⏱")
    (frame,) = decode_all(blob)
    assert decode_error(frame) == (
        CONNECTION_FLOW, ErrorCode.IDLE_TIMEOUT, "idle ⏱",
    )


def test_goodbye_is_minimal():
    (frame,) = decode_all(encode_goodbye())
    assert frame.type == FrameType.GOODBYE
    assert frame.payload == b""


# ----------------------------------------------------------------------
def test_decoder_handles_byte_at_a_time_delivery():
    blob = encode_open_flow(1) + encode_data(1, b"abc") + encode_goodbye()
    decoder = FrameDecoder()
    frames = []
    for i in range(len(blob)):
        frames += decoder.feed(blob[i : i + 1])
    assert [f.type for f in frames] == [
        FrameType.OPEN_FLOW, FrameType.DATA, FrameType.GOODBYE,
    ]
    assert decoder.pending() == 0


def test_decoder_rejects_oversized_length_before_body():
    """The limit fires on the *declared* length, so the body never has
    to arrive (or be buffered) for the rejection."""
    decoder = FrameDecoder(max_frame=64)
    header = struct.pack("!I", 65)
    with pytest.raises(ProtocolError) as info:
        decoder.feed(header)  # not a single body byte supplied
    assert info.value.code == ErrorCode.FRAME_TOO_LARGE


def test_decoder_accepts_frame_at_exact_limit():
    chunk = b"x" * 59
    blob = encode_data(3, chunk)
    assert len(blob) - 4 == 64
    (frame,) = FrameDecoder(max_frame=64).feed(blob)
    assert decode_data(frame) == (3, chunk)


def test_decoder_rejects_empty_body():
    with pytest.raises(ProtocolError):
        FrameDecoder().feed(struct.pack("!I", 0))


def test_short_payload_raises_protocol_error():
    with pytest.raises(ProtocolError):
        decode_hello(Frame(FrameType.HELLO, b"\x00"))
    with pytest.raises(ProtocolError):
        decode_result(Frame(FrameType.RESULT, b"\x00\x00"))


def test_undecodable_result_payload_raises():
    frame = Frame(FrameType.RESULT, struct.pack("!IB", 1, 1) + b"junk")
    with pytest.raises(ProtocolError):
        decode_result(frame)
