"""Cross-subsystem scenario tests: the paper's deployment, end to end."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.xmlrpc import ContentBasedRouter, MethodCall, WorkloadGenerator
from repro.core.generator import TaggerGenerator
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.grammar.examples import xmlrpc, xmlrpc_from_dtd


class TestGateLevelDeployment:
    """The §4 router running on the actual generated netlist."""

    @pytest.fixture(scope="class")
    def gate_router(self):
        grammar = xmlrpc()
        circuit = TaggerGenerator().generate(grammar)
        return ContentBasedRouter(
            grammar=grammar, tagger=GateLevelTagger(circuit)
        )

    def test_multi_message_stream(self, gate_router):
        stream, truth = WorkloadGenerator(seed=77, max_params=2).stream(3)
        routed = gate_router.route(stream)
        assert [m.port for m in routed] == [p for _c, p, _d in truth]

    def test_decoy_immunity_in_hardware(self, gate_router):
        from repro.apps.xmlrpc import StringValue

        message = MethodCall("buy", (StringValue("deposit"),)).encode()
        assert gate_router.route(message)[0].port == 1


class TestIndexStreamBackend:
    """§3.4: the back-end can work from the encoded index alone —
    "it is often more desirable to produce the corresponding index
    number" — without the per-occurrence detect wires."""

    def test_route_from_index_stream(self):
        grammar = xmlrpc()
        circuit = TaggerGenerator().generate(grammar)
        gate = GateLevelTagger(circuit)
        message = MethodCall("withdraw").encode()

        # Reconstruct occurrences purely from (end, index) pairs.
        occurrences = [
            circuit.occurrence_of_index(index)
            for _end, index in gate.index_stream(message)
        ]
        assert None not in occurrences
        names = [o.terminal.name for o in occurrences]
        assert names[0] == "<methodCall>"
        assert "STRING" in names
        # The STRING index identifies the methodName context: route it.
        string_occ = occurrences[names.index("STRING")]
        element = grammar.productions[string_occ.production].lhs.name
        assert element == "methodName"

    def test_index_stream_matches_detect_wires(self):
        grammar = xmlrpc()
        circuit = TaggerGenerator().generate(grammar)
        gate = GateLevelTagger(circuit)
        message = MethodCall("buy").encode()
        via_index = {
            (end, circuit.occurrence_of_index(index))
            for end, index in gate.index_stream(message)
        }
        via_wires = {(e.end, e.occurrence) for e in gate.events(message)}
        assert via_index == via_wires  # one-hot stream: no OR-collisions


class TestDTDPipeline:
    """Fig. 13 → Fig. 14 → hardware, automatically."""

    @pytest.fixture(scope="class")
    def dtd_grammar(self):
        return xmlrpc_from_dtd()

    def test_dtd_grammar_hardware_equivalence(self, dtd_grammar):
        message = (
            b"<methodCall><methodName>sell</methodName><params>"
            b"<param><value><string>x9</string></value></param>"
            b"</params></methodCall>"
        )
        behavioral = BehavioralTagger(dtd_grammar)
        gate = GateLevelTagger(TaggerGenerator().generate(dtd_grammar))
        assert behavioral.events(message) == gate.events(message)

    def test_dtd_grammar_implements_on_device(self, dtd_grammar):
        from repro.fpga import get_device, implement

        circuit = TaggerGenerator().generate(dtd_grammar)
        report = implement(circuit, get_device("virtex4-lx200"))
        assert report.n_luts > 300
        assert report.frequency_mhz > 200


# ----------------------------------------------------------------------
# regex round-trip property: str() of any AST reparses to the same
# language (checked via NFA agreement on random inputs).
# ----------------------------------------------------------------------
_leaves = st.sampled_from(["a", "b", "[ab]", "[^a]", "0", r"\."])


@st.composite
def regex_asts(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(_leaves)
    kind = draw(st.sampled_from(["seq", "alt", "rep"]))
    if kind == "seq":
        return draw(regex_asts(depth=depth + 1)) + draw(
            regex_asts(depth=depth + 1)
        )
    if kind == "alt":
        left = draw(regex_asts(depth=depth + 1))
        right = draw(regex_asts(depth=depth + 1))
        return f"({left}|{right})"
    inner = draw(regex_asts(depth=depth + 1))
    op = draw(st.sampled_from(["?", "*", "+"]))
    return f"({inner}){op}"


@given(
    pattern=regex_asts(),
    data=st.text(alphabet="ab0.", max_size=6).map(lambda s: s.encode()),
)
@settings(max_examples=150, deadline=None)
def test_regex_str_roundtrip_preserves_language(pattern, data):
    from repro.grammar.regex.nfa import compile_nfa
    from repro.grammar.regex.parser import parse_regex

    original = parse_regex(pattern)
    reparsed = parse_regex(str(original))
    assert compile_nfa(original).matches(data) == compile_nfa(
        reparsed
    ).matches(data)
