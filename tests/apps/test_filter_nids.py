"""Content filter and context-signature scanner back-ends."""

import pytest

from repro.apps.content_filter import ContentFilter, FilterRule
from repro.apps.nids import ContextSignatureScanner, Signature
from repro.apps.xmlrpc import Base64Value, MethodCall, StringValue


@pytest.fixture(scope="module")
def two_messages():
    forbidden = MethodCall("withdraw").encode()
    benign = MethodCall("deposit", (StringValue("withdraw"),)).encode()
    return forbidden + benign


class TestContentFilter:
    def test_context_rule_drops_only_in_context(
        self, xmlrpc_grammar, two_messages
    ):
        content_filter = ContentFilter(
            xmlrpc_grammar,
            [FilterRule(value=b"withdraw", context="methodName")],
        )
        decisions = content_filter.filter(two_messages)
        assert [d.dropped for d in decisions] == [True, False]

    def test_contextless_rule_drops_both(self, xmlrpc_grammar, two_messages):
        content_filter = ContentFilter(
            xmlrpc_grammar, [FilterRule(value=b"withdraw", context=None)]
        )
        decisions = content_filter.filter(two_messages)
        assert [d.dropped for d in decisions] == [True, True]

    def test_flag_action_does_not_drop(self, xmlrpc_grammar, two_messages):
        content_filter = ContentFilter(
            xmlrpc_grammar,
            [FilterRule(value=b"withdraw", context="methodName",
                        action="flag")],
        )
        decisions = content_filter.filter(two_messages)
        assert not any(d.dropped for d in decisions)
        assert decisions[0].flags

    def test_passed_stream(self, xmlrpc_grammar, two_messages):
        content_filter = ContentFilter(
            xmlrpc_grammar,
            [FilterRule(value=b"withdraw", context="methodName")],
        )
        survivors = content_filter.passed(two_messages)
        assert survivors.count(b"<methodCall>") == 1
        assert b"deposit" in survivors


class TestSignatureScanner:
    @pytest.fixture(scope="class")
    def scanner(self, xmlrpc_grammar):
        return ContextSignatureScanner(
            xmlrpc_grammar,
            [
                Signature(
                    name="marker",
                    pattern=b"90cc90",
                    contexts=frozenset({"base64"}),
                )
            ],
        )

    def test_alert_in_scoped_context(self, scanner):
        bad = MethodCall("up", (Base64Value("xx90cc90xx"),)).encode()
        alerts = scanner.scan(bad)
        assert len(alerts) == 1
        assert alerts[0].context == "base64"

    def test_no_alert_outside_context(self, scanner):
        benign = MethodCall("up", (StringValue("90cc90"),)).encode()
        assert scanner.scan(benign) == []

    def test_alert_positions(self, scanner):
        bad = MethodCall("up", (Base64Value("90cc90"),)).encode()
        alert = scanner.scan(bad)[0]
        assert bad[alert.start : alert.end] == b"90cc90"

    def test_comparison_counts_false_positives(self, scanner):
        stream = (
            MethodCall("up", (Base64Value("90cc90"),)).encode()
            + MethodCall("up", (StringValue("90cc90"),)).encode()
        )
        comparison = scanner.compare_with_naive(stream)
        assert len(comparison.alerts) == 1
        assert len(comparison.naive_hits) == 2
        assert comparison.false_positives == 1
