"""XML-RPC message model: serialization and lexical restrictions."""

import pytest

from repro.apps.xmlrpc.messages import (
    ArrayValue,
    Base64Value,
    DateTimeValue,
    DoubleValue,
    I4Value,
    IntValue,
    MethodCall,
    StringValue,
    StructValue,
)
from repro.errors import BackendError


class TestValues:
    def test_int_and_i4(self):
        assert IntValue(-7).serialize() == "<int>-7</int>"
        assert I4Value(42).serialize() == "<i4>42</i4>"

    def test_i4_range_checked(self):
        with pytest.raises(BackendError):
            I4Value(2**31)

    def test_string_alnum_only(self):
        assert StringValue("abc123").serialize() == "<string>abc123</string>"
        with pytest.raises(BackendError):
            StringValue("has space")
        with pytest.raises(BackendError):
            StringValue("")

    def test_double_format(self):
        assert DoubleValue(3.5).serialize() == "<double>3.5</double>"
        assert "<double>-0.25</double>" == DoubleValue(-0.25).serialize()
        assert DoubleValue(2.0).serialize() == "<double>2.0</double>"

    def test_datetime_format(self):
        value = DateTimeValue(2006, 7, 4, 12, 30, 5)
        assert value.serialize() == (
            "<dateTime.iso8601>20060704T12:30:05</dateTime.iso8601>"
        )

    def test_datetime_validation(self):
        with pytest.raises(BackendError):
            DateTimeValue(2006, 13, 1, 0, 0, 0)
        with pytest.raises(BackendError):
            DateTimeValue(206, 1, 1, 0, 0, 0)

    def test_base64_alphabet(self):
        assert Base64Value("ab+/9").serialize() == "<base64>ab+/9</base64>"
        with pytest.raises(BackendError):
            Base64Value("has=padding")

    def test_struct_members(self):
        value = StructValue((("k", IntValue(1)),))
        assert value.serialize() == (
            "<struct><member><name>k</name><int>1</int></member></struct>"
        )
        with pytest.raises(BackendError):
            StructValue(())
        with pytest.raises(BackendError):
            StructValue((("bad name", IntValue(1)),))

    def test_array_fig14_shape(self):
        assert ArrayValue(None).serialize() == "<array></array>"
        assert ArrayValue(IntValue(1)).serialize() == (
            "<array><data><int>1</int></data></array>"
        )


class TestMethodCall:
    def test_serialization(self):
        call = MethodCall("buy", (I4Value(5),))
        assert call.serialize() == (
            "<methodCall><methodName>buy</methodName><params>"
            "<param><i4>5</i4></param></params></methodCall>"
        )

    def test_method_name_checked(self):
        with pytest.raises(BackendError):
            MethodCall("not ok")

    def test_encode_ascii(self):
        assert isinstance(MethodCall("ping").encode(), bytes)


class TestGrammarConformance:
    """Everything the model serializes must parse under Fig. 14."""

    @pytest.mark.parametrize(
        "call",
        [
            MethodCall("ping"),
            MethodCall("buy", (I4Value(1), StringValue("x"))),
            MethodCall("d1", (DateTimeValue(1999, 12, 31, 23, 59, 59),)),
            MethodCall("n", (StructValue((("a", DoubleValue(1.5)),
                                          ("b", Base64Value("Zm9v")))),)),
            MethodCall("arr", (ArrayValue(IntValue(9)), ArrayValue(None))),
        ],
    )
    def test_parses_with_ll1(self, xmlrpc_grammar, call):
        from repro.software.ll1 import LL1Parser

        LL1Parser(xmlrpc_grammar).parse(call.encode())
