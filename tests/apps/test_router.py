"""Content-based router (Fig. 12) and the naive baseline."""

import pytest

from repro.apps.xmlrpc import (
    ContentBasedRouter,
    MethodCall,
    NaiveRouter,
    StringValue,
    WorkloadGenerator,
)
from repro.core.generator import TaggerGenerator
from repro.core.tagger import GateLevelTagger


@pytest.fixture(scope="module")
def router():
    return ContentBasedRouter()


class TestContextualRouter:
    def test_routes_by_method_name(self, router):
        for service, port in (("deposit", 0), ("buy", 1), ("price", 1)):
            message = MethodCall(service).encode()
            routed = router.route(message)
            assert len(routed) == 1
            assert routed[0].port == port
            assert routed[0].service == service

    def test_unknown_service_default_port(self, router):
        routed = router.route(MethodCall("mystery").encode())
        assert routed[0].port == -1

    def test_message_boundaries(self, router, xmlrpc_stream):
        routed = router.route(xmlrpc_stream)
        assert len(routed) == 8
        for message in routed:
            assert message.payload.startswith(b"<methodCall>")
            assert message.payload.endswith(b"</methodCall>")

    def test_payload_spans_are_disjoint(self, router, xmlrpc_stream):
        routed = router.route(xmlrpc_stream)
        for first, second in zip(routed, routed[1:]):
            assert first.end <= second.start

    def test_decoy_immune(self, router):
        message = MethodCall(
            "buy", (StringValue("deposit"),)
        ).encode()
        routed = router.route(message)
        assert routed[0].port == 1  # shopping, not bank

    def test_route_to_ports_partition(self, router, xmlrpc_stream):
        ports = router.route_to_ports(xmlrpc_stream)
        assert sum(len(v) for v in ports.values()) == 8

    def test_gate_level_tagger_backend(self, xmlrpc_grammar):
        """The router works on the cycle-accurate hardware too."""
        circuit = TaggerGenerator().generate(xmlrpc_grammar)
        router = ContentBasedRouter(
            grammar=xmlrpc_grammar, tagger=GateLevelTagger(circuit)
        )
        message = MethodCall("withdraw").encode()
        routed = router.route(message)
        assert routed[0].port == 0 and routed[0].service == "withdraw"

    def test_bad_method_element_rejected(self, xmlrpc_grammar):
        from repro.errors import BackendError

        with pytest.raises(BackendError):
            ContentBasedRouter(
                grammar=xmlrpc_grammar, method_element="nosuch"
            )


class TestNaiveRouter:
    def test_clean_messages_route_fine(self):
        stream, truth = WorkloadGenerator(seed=11).stream(10)
        naive = NaiveRouter()
        routed = naive.route(stream)
        assert len(routed) == 10
        correct = sum(
            1 for m, (_c, p, _d) in zip(routed, truth) if m.port == p
        )
        assert correct == 10

    def test_decoys_misroute(self):
        stream, truth = WorkloadGenerator(
            seed=12, adversarial_rate=1.0
        ).stream(10)
        naive = NaiveRouter()
        contextual = ContentBasedRouter()
        naive_correct = sum(
            1 for m, (_c, p, _d) in zip(naive.route(stream), truth)
            if m.port == p
        )
        contextual_correct = sum(
            1 for m, (_c, p, _d) in zip(contextual.route(stream), truth)
            if m.port == p
        )
        assert contextual_correct == 10
        assert naive_correct < 10

    def test_first_policy(self):
        message = MethodCall("buy", (StringValue("deposit"),)).encode()
        # first-match policy happens to survive trailing decoys ...
        assert NaiveRouter(policy="first").route(message)[0].port == 1
        # ... but the switch-following last-match policy does not.
        assert NaiveRouter(policy="last").route(message)[0].port == 0

    def test_unknown_policy_rejected(self):
        from repro.errors import BackendError

        with pytest.raises(BackendError):
            NaiveRouter(policy="middle")

    def test_no_service_hits_default(self):
        message = MethodCall("zzz").encode()
        assert NaiveRouter().route(message)[0].port == -1
