"""Packet substrate: headers, TCP reassembly, traces, wrapper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.netstack import (
    FlowKey,
    IPv4Header,
    Packet,
    TCPHeader,
    TCPReassembler,
    TaggingWrapper,
    TraceGenerator,
    ipv4_checksum,
)
from repro.apps.netstack.packets import EthernetHeader
from repro.errors import BackendError

IP = IPv4Header(src="10.0.0.1", dst="10.0.0.2")


def _data_packet(seq, payload, src_port=1000):
    return Packet(IP, TCPHeader(src_port, 80, seq=seq), payload)


class TestHeaders:
    def test_ipv4_checksum_rfc_example(self):
        # Classic RFC 1071 example header.
        header = bytes.fromhex("4500003c1c4640004006b1e6ac100a63ac100a0c")
        assert ipv4_checksum(header) == 0  # checksum of valid header is 0

    def test_ipv4_roundtrip(self):
        raw = IP.serialize()
        parsed, rest = IPv4Header.parse(raw + b"xy")
        assert parsed.src == "10.0.0.1" and parsed.dst == "10.0.0.2"
        assert rest == b"xy"

    def test_ipv4_checksum_enforced(self):
        raw = bytearray(IP.serialize())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(BackendError, match="checksum"):
            IPv4Header.parse(bytes(raw))

    def test_tcp_roundtrip(self):
        tcp = TCPHeader(40000, 80, seq=12345, flags=TCPHeader.SYN)
        parsed, rest = TCPHeader.parse(tcp.serialize() + b"pp")
        assert parsed.seq == 12345
        assert parsed.flags & TCPHeader.SYN
        assert rest == b"pp"

    def test_ethernet_roundtrip(self):
        eth = EthernetHeader()
        parsed, _ = EthernetHeader.parse(eth.serialize())
        assert parsed.src == "02:00:00:00:00:01"

    def test_full_packet_roundtrip(self):
        packet = _data_packet(77, b"hello world")
        parsed = Packet.parse(packet.serialize())
        assert parsed.payload == b"hello world"
        assert parsed.tcp.seq == 77
        assert parsed.ip.total_length == 40 + 11

    def test_truncated_rejected(self):
        with pytest.raises(BackendError):
            Packet.parse(b"\x00" * 20)

    def test_bad_addresses_rejected(self):
        with pytest.raises(BackendError):
            IPv4Header(src="999.0.0.1", dst="10.0.0.2").serialize()


class TestReassembly:
    def test_in_order_delivery(self):
        r = TCPReassembler()
        r.push(Packet(IP, TCPHeader(1000, 80, seq=9, flags=TCPHeader.SYN)))
        _key, a = r.push(_data_packet(10, b"ab"))
        _key, b = r.push(_data_packet(12, b"cd"))
        assert (a, b) == (b"ab", b"cd")

    def test_out_of_order_buffered(self):
        r = TCPReassembler()
        r.push(Packet(IP, TCPHeader(1000, 80, seq=0, flags=TCPHeader.SYN)))
        _k, first = r.push(_data_packet(3, b"cd"))   # hole at 1..2
        assert first == b""
        _k, second = r.push(_data_packet(1, b"ab"))
        assert second == b"abcd"
        assert r.stats.out_of_order == 1

    def test_duplicates_dropped(self):
        r = TCPReassembler()
        r.push(Packet(IP, TCPHeader(1000, 80, seq=0, flags=TCPHeader.SYN)))
        r.push(_data_packet(1, b"abc"))
        _k, again = r.push(_data_packet(1, b"abc"))
        assert again == b""
        assert r.stats.duplicates == 1

    def test_retransmission_with_new_tail(self):
        r = TCPReassembler()
        r.push(Packet(IP, TCPHeader(1000, 80, seq=0, flags=TCPHeader.SYN)))
        r.push(_data_packet(1, b"abc"))
        _k, extra = r.push(_data_packet(1, b"abcdef"))
        assert extra == b"def"

    def test_mid_stream_synchronization(self):
        r = TCPReassembler()  # no SYN seen
        _k, data = r.push(_data_packet(500, b"xy"))
        assert data == b"xy"

    def test_sequence_wraparound(self):
        r = TCPReassembler()
        start = (1 << 32) - 2
        r.push(Packet(IP, TCPHeader(1000, 80, seq=start - 1, flags=TCPHeader.SYN)))
        _k, a = r.push(_data_packet(start, b"abcd"))  # crosses 2^32
        _k, b = r.push(_data_packet((start + 4) % (1 << 32), b"ef"))
        assert a + b == b"abcdef"

    def test_flows_are_independent(self):
        r = TCPReassembler()
        _k1, a = r.push(_data_packet(0, b"flow1", src_port=1111))
        _k2, b = r.push(_data_packet(0, b"flow2", src_port=2222))
        assert (a, b) == (b"flow1", b"flow2")
        assert r.stats.flows == 2

    def test_fin_marks_finished(self):
        r = TCPReassembler()
        packet = Packet(IP, TCPHeader(1000, 80, seq=5, flags=TCPHeader.FIN))
        key, _ = r.push(packet)
        assert r.finished(key)

    @given(
        payload=st.binary(min_size=1, max_size=120),
        mss=st.integers(1, 17),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_impairment_reassembles(self, payload, mss, seed):
        """Permutation + duplication must reassemble to the original."""
        generator = TraceGenerator(
            seed=seed, mss=mss, reorder_rate=0.5, duplicate_rate=0.4
        )
        packets = generator.impair(generator.flow_packets(payload))
        reassembler = TCPReassembler()
        out = bytearray()
        for packet in packets:
            _key, data = reassembler.push(packet)
            out += data
        assert bytes(out) == payload


class TestTraceGenerator:
    def test_deterministic(self):
        a = TraceGenerator(seed=4).trace([b"x" * 100])
        b = TraceGenerator(seed=4).trace([b"x" * 100])
        assert [p.tcp.seq for p in a] == [p.tcp.seq for p in b]

    def test_mss_respected(self):
        packets = TraceGenerator(mss=10).flow_packets(b"a" * 35)
        sizes = [len(p.payload) for p in packets if p.payload]
        assert sizes == [10, 10, 10, 5]

    def test_interleaving_preserves_per_flow_order(self):
        generator = TraceGenerator(seed=3)
        flows = [
            generator.flow_packets(b"A" * 40, src_port=1111),
            generator.flow_packets(b"B" * 40, src_port=2222),
        ]
        trace = generator.interleave(flows)
        for port in (1111, 2222):
            seqs = [p.tcp.seq for p in trace if p.tcp.src_port == port]
            assert seqs == sorted(seqs, key=lambda s: (s - seqs[0]) % (1 << 32))


class TestWrapper:
    def test_end_to_end_routing(self):
        from repro.apps.xmlrpc import WorkloadGenerator

        workload = WorkloadGenerator(seed=21)
        payloads, truths = [], []
        for _ in range(4):
            stream, truth = workload.stream(2)
            payloads.append(stream)
            truths.append([port for _c, port, _d in truth])
        generator = TraceGenerator(
            seed=13, mss=32, reorder_rate=0.4, duplicate_rate=0.2
        )
        frames = generator.wire_bytes(generator.trace(payloads))
        wrapper = TaggingWrapper()
        results = wrapper.process(frames=frames)
        assert wrapper.malformed == 0
        by_port = {r.key.src_port: r for r in results}
        for i, truth in enumerate(truths):
            flow = by_port[40000 + i]
            assert [m.port for m in flow.messages] == truth

    def test_malformed_frames_counted(self):
        wrapper = TaggingWrapper()
        assert wrapper.feed(b"garbage") == []
        assert wrapper.malformed == 1
