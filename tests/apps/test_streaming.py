"""Incremental (chunked) routing ≡ whole-stream routing.

The wire delivers packets, not streams: :class:`RouterSession` must
produce exactly the messages :meth:`ContentBasedRouter.route` produces
on the concatenated bytes, for any chunking, while holding only a
bounded byte window; and the netstack wrapper's per-flow sessions must
keep :meth:`TaggingWrapper.results` idempotent mid-trace.
"""

import random

import pytest

from repro.apps.netstack.tracegen import TraceGenerator
from repro.apps.netstack.wrapper import TaggingWrapper
from repro.apps.xmlrpc import ContentBasedRouter, WorkloadGenerator
from repro.core.generator import TaggerGenerator
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.errors import BackendError
from repro.grammar.examples import xmlrpc


@pytest.fixture(scope="module")
def router():
    return ContentBasedRouter()


@pytest.fixture(scope="module")
def stream():
    data, _truth = WorkloadGenerator(seed=13).stream(30)
    return data


def test_session_matches_batch_any_chunking(router, stream):
    whole = router.route(stream)
    rng = random.Random(31)
    for _trial in range(5):
        session = router.stream()
        got = []
        i = 0
        while i < len(stream):
            k = rng.randrange(1, 64)
            got += session.feed(stream[i : i + k])
            i += k
        got += session.finish()
        assert got == whole


def test_session_buffer_stays_bounded(router, stream):
    """The retained window tracks open messages, not the whole stream."""
    session = router.stream()
    high_water = 0
    for i in range(0, len(stream), 97):
        session.feed(stream[i : i + 97])
        high_water = max(high_water, len(session._buffer))
    # every message in this workload is far smaller than the stream
    assert high_water < len(stream) // 4


def test_peek_finish_does_not_consume(router, stream):
    whole = router.route(stream)
    cut = len(stream) // 2
    session = router.stream()
    messages = session.feed(stream[:cut])
    peeked = session.peek_finish()
    # peeking twice is stable, and feeding continues afterwards
    assert session.peek_finish() == peeked
    messages += session.feed(stream[cut:])
    messages += session.finish()
    assert messages == whole


def test_peek_twice_then_finish_is_idempotent(router, stream):
    """Regression: peek_finish() used to duplicate flush bookkeeping.

    Two peeks and the committing finish() must all see the same
    end-of-data messages, and the merged total must equal the batch
    route."""
    whole = router.route(stream)
    session = router.stream()
    fed = session.feed(stream)
    first = session.peek_finish()
    second = session.peek_finish()
    committed = session.finish()
    assert first == second == committed
    assert fed + committed == whole
    # the session is now closed: peeking yields nothing, feeding raises
    assert session.peek_finish() == []
    with pytest.raises(BackendError):
        session.feed(b"more")


def test_gate_level_tagger_has_no_stream(router):
    circuit = TaggerGenerator().generate(xmlrpc())
    gated = ContentBasedRouter(tagger=GateLevelTagger(circuit))
    with pytest.raises(BackendError):
        gated.stream()


def test_wrapper_streams_per_flow():
    """Chunked per-packet tagging equals the legacy whole-stream path."""
    messages = [
        WorkloadGenerator(seed=5).message()[0].encode() for _ in range(6)
    ]
    trace = TraceGenerator(mss=48).trace(messages)

    streaming = TaggingWrapper()
    assert streaming._streaming
    legacy = TaggingWrapper(
        ContentBasedRouter(tagger=BehavioralTagger(xmlrpc(), engine="interpreted"))
    )
    assert not legacy._streaming

    got = streaming.process(trace)
    want = legacy.process(trace)
    assert [r.messages for r in got] == [r.messages for r in want]
    assert [r.payload for r in got] == [r.payload for r in want]


def test_wrapper_results_idempotent_midtrace():
    """results() is a snapshot: callable repeatedly, mid-trace, without
    disturbing subsequent incremental tagging."""
    messages = [
        WorkloadGenerator(seed=9).message()[0].encode() for _ in range(4)
    ]
    trace = TraceGenerator(mss=64).trace(messages)
    wrapper = TaggingWrapper()
    half = len(trace) // 2
    for packet in trace[:half]:
        wrapper.feed_packet(packet)
    mid = wrapper.results()
    assert wrapper.results() == mid
    for packet in trace[half:]:
        wrapper.feed_packet(packet)
    final = wrapper.results()

    oneshot = TaggingWrapper()
    assert oneshot.process(trace) == final
