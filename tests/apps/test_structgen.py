"""Differential correctness for the constrained-decoding subsystem.

The mask invariant: bit *i* of ``mask_row(state)`` is set iff feeding
token *i*'s bytes through the compiled engine from ``state`` survives
— no error state en route, and the landing state can still reach a
detection (or a valid EOF).  This suite pins that against an
*independent oracle* that walks raw bytes (not byte classes) through
``_CompiledTables.build_step`` (not the vector lowering) and computes
liveness by its own forward closure — so a bug in the class table, the
trie precompute, the CI/CD split, or the doomed-state closure shows up
as a bit mismatch, across every wiring corner.
"""

import random
from dataclasses import replace

import pytest

from repro.apps.structgen import (
    MaskError,
    MaskSession,
    Vocabulary,
    build_mask_table,
    load_mask_blob,
    synthetic_vocab,
)
from repro.apps.structgen.masks import read_mask_header
from repro.core.compiled import CompiledTagger
from repro.core.generator import TaggerOptions
from repro.core.wiring import WiringOptions
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc

GRAMMARS = {
    "ite": if_then_else,
    "xmlrpc": xmlrpc,
    "parens": balanced_parens,
}

#: Same wiring corners the engine differential matrix specializes on.
VARIANTS = {
    "default": WiringOptions(),
    "no-dup": WiringOptions(context_duplication=False),
    "always": WiringOptions(start_mode="always"),
    "recovery": WiringOptions(error_recovery=True),
}
VARIANTS["no-longest"] = replace(
    WiringOptions(),
    tokenizer=replace(WiringOptions().tokenizer, longest_match=False),
)


class Oracle:
    """Raw-byte reimplementation of mask validity from first
    principles: per-byte ``build_step`` walks plus a forward closure
    for liveness.  Shares the interned tid space with the mask table
    (same grammar object, same wiring, same process-wide table cache)
    but none of the lowering's class/step/doomed arrays."""

    def __init__(self, grammar, wiring: WiringOptions) -> None:
        tagger = CompiledTagger(grammar, TaggerOptions(wiring=wiring))
        self.tables = tagger.tables
        self._alive: set | None = None

    # -- raw-byte single step ------------------------------------------
    def is_err(self, tid: int) -> bool:
        items, armed, pdet, first = self.tables.tstates[tid]
        return (
            self.tables.recovery
            and not first
            and not (items or armed or pdet)
        )

    def step(self, tid: int, byte: int) -> tuple[int, bool]:
        sig = self.tables.build_step(tid, byte)
        if isinstance(sig, int):
            return sig >> 8, False
        return sig[0] >> 8, bool(sig[1])

    def eos(self, tid: int) -> bool:
        unit_dfas = self.tables.unit_dfas
        return any(
            unit_dfas[u].detect_masks[s] >> 256 & 1
            for u, s in self.tables.tstates[tid][0]
        )

    # -- liveness by forward closure -----------------------------------
    def _closure(self) -> tuple[list[int], set]:
        """(every tid reachable from 0 over raw bytes, alive set)."""
        seen = [0]
        seen_set = {0}
        position = 0
        edges: dict[int, set] = {}
        emitters: set = set()
        while position < len(seen):
            tid = seen[position]
            position += 1
            if self.is_err(tid):
                continue  # parses never leave an error state
            outs = edges.setdefault(tid, set())
            for byte in range(256):
                ntid, emitted = self.step(tid, byte)
                if emitted:
                    emitters.add(tid)
                outs.add(ntid)
                if ntid not in seen_set:
                    seen_set.add(ntid)
                    seen.append(ntid)
        alive = {
            tid
            for tid in seen
            if not self.is_err(tid) and (tid in emitters or self.eos(tid))
        }
        changed = True
        while changed:
            changed = False
            for tid, outs in edges.items():
                if tid not in alive and outs & alive:
                    alive.add(tid)
                    changed = True
        return seen, alive

    @property
    def states(self) -> list[int]:
        if self._alive is None:
            self._states, self._alive = self._closure()
        return self._states

    def valid(self, tid: int, token: bytes) -> bool:
        if self._alive is None:
            self._states, self._alive = self._closure()
        for byte in token:
            if self.is_err(tid):
                return False
            tid, _emitted = self.step(tid, byte)
        return tid in self._alive


def _sample_states(oracle: Oracle, rng: random.Random, count: int):
    states = oracle.states
    picks = {0}
    while len(picks) < min(count, len(states)):
        picks.add(rng.choice(states))
    return sorted(picks)


def _bit(row, token_id: int) -> bool:
    return bool(row[token_id >> 3] >> (token_id & 7) & 1)


# ----------------------------------------------------------------------
# the differential matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("vname", VARIANTS)
@pytest.mark.parametrize("gname", GRAMMARS)
def test_mask_bits_match_oracle(gname, vname):
    grammar = GRAMMARS[gname]()
    wiring = VARIANTS[vname]
    vocab = synthetic_vocab(size=384, seed=11)
    table = build_mask_table(
        grammar, vocab, TaggerOptions(wiring=wiring)
    )
    oracle = Oracle(grammar, wiring)
    rng = random.Random(93)
    for state in _sample_states(oracle, rng, 12):
        if state >= table.n_states:
            pytest.fail(
                f"raw-byte closure reached state {state} beyond the "
                f"class closure's {table.n_states}"
            )
        row = table.mask_row(state)
        for token_id, token in enumerate(vocab.tokens):
            expected = oracle.valid(state, token)
            assert _bit(row, token_id) == expected, (
                f"{gname}/{vname}: state {state} token "
                f"{token_id} ({token!r}) mask bit "
                f"{_bit(row, token_id)} oracle {expected}"
            )


@pytest.mark.parametrize("gname", GRAMMARS)
def test_multibyte_utf8_tokens(gname):
    """Multi-byte UTF-8 tokens — each a single vocabulary entry whose
    bytes span class boundaries — obey the same oracle invariant."""
    grammar = GRAMMARS[gname]()
    tokens = [bytes([b]) for b in range(256)]
    tokens += [
        "é".encode(),
        "日本語".encode(),
        "→".encode(),
        "🚀".encode(),
        " é<".encode(),
        "a→b".encode(),
        "<méthodCall>".encode(),
        "né(st)ed".encode(),
    ]
    multi_ids = [
        i for i, t in enumerate(tokens) if len(t) > 1
    ]
    assert multi_ids, "vocabulary must contain multi-byte tokens"
    vocab = Vocabulary(tokens)
    table = build_mask_table(grammar, vocab)
    oracle = Oracle(grammar, WiringOptions())
    rng = random.Random(17)
    for state in _sample_states(oracle, rng, 10):
        row = table.mask_row(state)
        for token_id in multi_ids:
            assert _bit(row, token_id) == oracle.valid(
                state, tokens[token_id]
            )


def test_cd_split_is_invisible():
    """A tiny precompute budget forces most tokens into the
    context-dependent set; the served rows must not change a bit."""
    grammar = xmlrpc()
    vocab = synthetic_vocab(size=384, seed=23)
    full = build_mask_table(grammar, vocab)
    squeezed = build_mask_table(
        grammar, vocab, ci_max_len=2, ci_budget=1
    )
    assert squeezed.ci_count < full.ci_count
    assert len(squeezed.cd_ids) > len(full.cd_ids)
    rng = random.Random(5)
    states = [0] + [
        rng.randrange(full.n_states) for _ in range(24)
    ]
    for state in states:
        assert bytes(full.mask_row(state)) == bytes(
            squeezed.mask_row(state)
        )


def test_session_decode_is_sequentially_consistent():
    """A masked random decode never emits an invalid token, and the
    concatenated byte stream replayed through the raw-byte oracle
    lands on the session's exact state without touching an error."""
    grammar = xmlrpc()
    vocab = synthetic_vocab(size=384, seed=31)
    table = build_mask_table(grammar, vocab)
    oracle = Oracle(grammar, WiringOptions())
    session = MaskSession(table)
    rng = random.Random(47)
    emitted = bytearray()
    for _ in range(160):
        row = session.mask()
        valid = [
            i for i in range(len(vocab)) if _bit(row, i)
        ]
        if not valid:
            break
        token_id = rng.choice(valid)
        session.advance(token_id)
        emitted += vocab.tokens[token_id]
    assert emitted
    tid = 0
    for byte in emitted:
        assert not oracle.is_err(tid)
        tid, _emitted = oracle.step(tid, byte)
    assert tid == session.state


def test_invalid_advance_raises():
    grammar = if_then_else()
    vocab = synthetic_vocab(size=384, seed=3)
    table = build_mask_table(grammar, vocab)
    session = MaskSession(table)
    row = session.mask()
    invalid = next(
        i for i in range(len(vocab)) if not _bit(row, i)
    )
    with pytest.raises(MaskError):
        session.advance(invalid)
    with pytest.raises(MaskError):
        session.advance(len(vocab) + 7)


# ----------------------------------------------------------------------
# artifact round trip
# ----------------------------------------------------------------------
def test_blob_roundtrip_bit_exact():
    grammar = xmlrpc()
    vocab = synthetic_vocab(size=384, seed=71)
    table = build_mask_table(grammar, vocab)
    blob = table.to_blob()
    loaded = load_mask_blob(blob, grammar)
    assert loaded.vocab_hash == table.vocab_hash
    assert loaded.cd_ids == table.cd_ids
    assert loaded.rows == table.rows
    for state in (0, 1, table.n_states - 1):
        assert bytes(loaded.mask_row(state)) == bytes(
            table.mask_row(state)
        )
    header = read_mask_header(blob)
    assert header["abi"] == 1
    assert header["vocab_size"] == len(vocab)


def test_blob_fingerprint_guard():
    """Rows built against different tables must refuse to load: the
    fingerprint pins the state-id interning order."""
    grammar = xmlrpc()
    vocab = synthetic_vocab(size=384, seed=71)
    table = build_mask_table(grammar, vocab)
    blob = table.to_blob()
    with pytest.raises(MaskError, match="fingerprint"):
        load_mask_blob(
            blob,
            grammar,
            TaggerOptions(wiring=WiringOptions(error_recovery=True)),
        )
    with pytest.raises(MaskError, match="magic"):
        load_mask_blob(b"JUNK" + blob[4:], grammar)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_session_metrics_render():
    from repro.service.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    grammar = if_then_else()
    vocab = synthetic_vocab(size=384, seed=3)
    table = build_mask_table(grammar, vocab)
    session = MaskSession(table, metrics=metrics)
    row = session.mask()
    token_id = next(
        i for i in range(len(vocab)) if _bit(row, i)
    )
    session.advance(token_id)
    session.mask()

    snapshot = metrics.snapshot()
    counters = snapshot["counters"]
    assert counters["structgen.masks_served"] == 2
    assert counters["structgen.advances"] == 1
    assert counters["structgen.ci_tokens"] == 2 * table.ci_count
    assert counters["structgen.cd_checks"] == 2 * len(table.cd_ids)
    rendered = metrics.render_prometheus()
    assert "repro_structgen_masks_served 2" in rendered
    assert "repro_structgen_advances 1" in rendered

    assert session.counters["masks_served"] == 2


def test_vocab_roundtrip(tmp_path):
    vocab = synthetic_vocab(size=384, seed=9)
    path = tmp_path / "vocab.json"
    vocab.save(path)
    loaded = Vocabulary.from_file(path)
    assert loaded.tokens == vocab.tokens
    assert loaded.vocab_hash == vocab.vocab_hash
