"""Workload generator: validity, determinism, adversarial mode."""

import pytest

from repro.apps.xmlrpc import WorkloadGenerator
from repro.software.ll1 import LL1Parser


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, _ = WorkloadGenerator(seed=9).stream(5)
        b, _ = WorkloadGenerator(seed=9).stream(5)
        assert a == b

    def test_different_seeds_differ(self):
        a, _ = WorkloadGenerator(seed=1).stream(5)
        b, _ = WorkloadGenerator(seed=2).stream(5)
        assert a != b


class TestValidity:
    def test_every_message_parses(self, xmlrpc_grammar):
        parser = LL1Parser(xmlrpc_grammar)
        generator = WorkloadGenerator(seed=77, adversarial_rate=0.5)
        for _ in range(25):
            call, _port, _decoy = generator.message()
            parser.parse(call.encode())

    def test_stream_parses_end_to_end(self, xmlrpc_grammar):
        parser = LL1Parser(xmlrpc_grammar)
        stream, truth = WorkloadGenerator(seed=5).stream(10)
        assert len(parser.parse_stream(stream)) == len(truth) == 10


class TestGroundTruth:
    def test_ports_match_table(self):
        generator = WorkloadGenerator(seed=3)
        for _ in range(20):
            call, port, _decoy = generator.message()
            assert port == generator.table.port_of(call.method)

    def test_adversarial_rate_zero_means_no_decoys(self):
        _, truth = WorkloadGenerator(seed=4, adversarial_rate=0.0).stream(20)
        assert not any(decoy for _c, _p, decoy in truth)

    def test_adversarial_messages_contain_foreign_service(self):
        generator = WorkloadGenerator(seed=6, adversarial_rate=1.0)
        call, port, decoy = generator.message()
        assert decoy
        other_services = [
            s
            for s in generator.table.services
            if generator.table.port_of(s) != port
        ]
        payload = call.serialize()
        assert any(s in payload for s in other_services)

    def test_decoy_not_in_method_name(self):
        generator = WorkloadGenerator(seed=8, adversarial_rate=1.0)
        for _ in range(10):
            call, port, _decoy = generator.message()
            assert generator.table.port_of(call.method) == port


class TestServiceTable:
    def test_default_port_for_unknown(self):
        from repro.apps.xmlrpc.services import BANK_SHOPPING_TABLE

        assert BANK_SHOPPING_TABLE.port_of("nosuch") == -1
        assert BANK_SHOPPING_TABLE.name_of(0) == "bank-server"
        assert BANK_SHOPPING_TABLE.name_of(99) == "port99"

    def test_duplicate_service_rejected(self):
        from repro.apps.xmlrpc.services import ServiceTable
        from repro.errors import BackendError

        table = ServiceTable()
        table.add("x", 0)
        with pytest.raises(BackendError):
            table.add("x", 1)
