"""Batched beam mask engine: differential and delta-format tests.

The acceptance invariant: every ``masks``/``advance``/``fork``/
``rollback`` result out of a :class:`BeamMaskSession` — on every
available compute path — is bit-identical to N independent
:class:`MaskSession` mirrors replaying the same operations.  Plus the
incremental delta tables (reconstruction, blob round trip, old-format
compatibility), the wire XOR patch codec, the CD-memo counters, and
the HuggingFace tokenizer.json importer.
"""

import json
import random

import pytest

from repro.apps.structgen import (
    MASK_FORMAT_REV,
    MaskError,
    MaskSession,
    Vocabulary,
    build_mask_table,
    load_mask_blob,
    synthetic_vocab,
)
from repro.apps.structgen.beam import (
    BeamMaskSession,
    apply_xor_patch,
    beam_capability,
    xor_patch,
)
from repro.grammar.examples import xmlrpc


@pytest.fixture(scope="module")
def table():
    return build_mask_table(xmlrpc(), synthetic_vocab(size=384, seed=7))


def available_paths():
    capability = beam_capability()
    paths = ["python"]
    if capability["numpy"]:
        paths.append("numpy")
    if capability["native"]:
        paths.append("native")
    return paths


def _valid_ids(row: bytes, n: int) -> list[int]:
    return [i for i in range(n) if row[i >> 3] >> (i & 7) & 1]


# ----------------------------------------------------------------------
# differential: beam ≡ N independent sessions, all paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path", available_paths())
def test_beam_differential_fork_rollback(table, path):
    """A seeded schedule of advances, forks, and rollbacks: states and
    every packed mask byte-identical to independent mirrors."""
    n = len(table.vocab)
    rng = random.Random(11)
    beam = BeamMaskSession(table, 4, path=path)
    mirror = [MaskSession(table) for _ in range(4)]
    history: list[list[int]] = []
    for step in range(50):
        roll = rng.random()
        if roll < 0.10 and len(mirror) < 12:
            lane = rng.randrange(len(mirror))
            history.append([m.state for m in mirror])
            twin = MaskSession(table)
            twin.state = mirror[lane].state
            mirror.append(twin)
            beam.fork(lane)
        elif roll < 0.20 and history:
            k = rng.randrange(1, min(3, len(history)) + 1)
            for _ in range(k):
                snapshot = history.pop()
            del mirror[len(snapshot):]
            while len(mirror) < len(snapshot):
                mirror.append(MaskSession(table))
            for m, s in zip(mirror, snapshot):
                m.state = s
            beam.rollback(k)
        else:
            ids = []
            for m in mirror:
                valid = _valid_ids(m.mask(), n)
                if not valid:
                    ids = None
                    break
                ids.append(rng.choice(valid))
            if ids is None:
                for m in mirror:
                    m.reset()
                beam.reset(len(mirror))
                history.clear()
            else:
                history.append([m.state for m in mirror])
                states, packed = beam.advance_masks(ids)
                for m, t in zip(mirror, ids):
                    m.advance(t)
                assert states == tuple(m.state for m in mirror)
                assert packed == b"".join(
                    bytes(m.mask()) for m in mirror
                ), f"fused packed rows diverged at step {step}"
        assert beam.states == tuple(m.state for m in mirror)
        assert beam.masks() == [bytes(m.mask()) for m in mirror]
        assert beam.masks_packed() == b"".join(
            bytes(m.mask()) for m in mirror
        )


@pytest.mark.parametrize("path", available_paths())
def test_beam_atomic_failure(table, path):
    """An invalid token in any lane raises and moves nothing."""
    n = len(table.vocab)
    beam = BeamMaskSession(table, 3, path=path)
    valid = _valid_ids(beam.masks()[0], n)
    invalid = next(
        i for i in range(n) if i not in set(valid)
    )
    before = beam.states
    with pytest.raises(MaskError, match="lane 1"):
        beam.advance([valid[0], invalid, valid[0]])
    assert beam.states == before
    with pytest.raises(MaskError, match="out of range"):
        beam.advance_masks([valid[0], n + 5, valid[0]])
    assert beam.states == before
    # The beam still works after the failed ops.
    states = beam.advance([valid[0]] * 3)
    assert states == beam.states


@pytest.mark.parametrize("path", available_paths())
def test_beam_fork_rollback_width(table, path):
    beam = BeamMaskSession(table, 2, path=path)
    n = len(table.vocab)
    ids = [
        _valid_ids(row, n)[0] for row in beam.masks()
    ]
    beam.advance(ids)
    assert beam.fork(0) == 2
    assert beam.width == 3
    assert beam.states[2] == beam.states[0]
    beam.rollback(1)  # undo the fork: width restored
    assert beam.width == 2
    beam.rollback(1)  # undo the advance
    assert beam.states == (0, 0)
    with pytest.raises(MaskError, match="roll back"):
        beam.rollback(1)


def test_beam_width_and_path_validation(table):
    with pytest.raises(MaskError, match="width"):
        BeamMaskSession(table, 0)
    with pytest.raises(MaskError, match="unknown beam path"):
        BeamMaskSession(table, 2, path="fpga")
    beam = BeamMaskSession(table, 2, path="python")
    with pytest.raises(MaskError, match="2 lanes"):
        beam.advance([1])


# ----------------------------------------------------------------------
# incremental delta tables and the XOR patch codec
# ----------------------------------------------------------------------
def test_xor_patch_roundtrip():
    rng = random.Random(3)
    for _ in range(20):
        a = bytes(rng.randrange(256) for _ in range(48))
        flips = rng.randrange(0, 6)
        b = bytearray(a)
        for _ in range(flips):
            b[rng.randrange(48)] ^= rng.randrange(1, 256)
        patch = xor_patch(a, bytes(b))
        assert len(patch) % 3 == 0
        assert apply_xor_patch(a, patch) == bytes(b)
    assert xor_patch(a, a) == b""


def test_delta_tables_reconstruct_exactly(table):
    """Every deltified row patches back to the exact CI row."""
    assert table.has_deltas
    stats = table.delta_stats()
    assert stats["rows_deltified"] > 0
    assert stats["mean_popcount"] >= 0.0
    checked = 0
    for state in range(table.n_states):
        base = table.delta_base[state]
        if base < 0:
            continue
        patched = table.patched_ci_row(
            state, bytes(table.ci_row(base))
        )
        assert bytes(patched) == bytes(table.ci_row(state))
        checked += 1
    assert checked == stats["rows_deltified"]


def test_blob_roundtrip_preserves_deltas(table):
    blob = table.to_blob()
    loaded = load_mask_blob(blob, xmlrpc())
    assert loaded.has_deltas
    assert loaded.delta_stats() == table.delta_stats()
    assert loaded.describe()["rev"] == MASK_FORMAT_REV
    # Mask rows are unaffected by the delta section.
    for state in (0, 1, table.n_states - 1):
        assert loaded.mask_row(state) == table.mask_row(state)


def test_old_format_blob_loads_without_deltas():
    """A rev-1 blob (no delta section) loads cleanly — the deltas are
    simply absent, signalling the registry heal path."""
    vocab = synthetic_vocab(size=384, seed=7)
    old = build_mask_table(xmlrpc(), vocab, delta_budget=0)
    assert not old.has_deltas
    assert old.describe()["rev"] == 1
    assert old.describe()["deltas"] is None
    loaded = load_mask_blob(old.to_blob(), xmlrpc())
    assert not loaded.has_deltas
    # Rebuilding deltas on the loaded table upgrades it in place.
    loaded.build_deltas()
    assert loaded.has_deltas
    fresh = build_mask_table(xmlrpc(), vocab)
    assert loaded.delta_stats() == fresh.delta_stats()


@pytest.mark.parametrize("path", available_paths())
def test_beam_serves_identically_without_deltas(table, path):
    """The delta tables are an optimization: a table without them
    serves the same masks (the pure-Python path goes cold every
    row)."""
    vocab = synthetic_vocab(size=384, seed=7)
    bare = build_mask_table(xmlrpc(), vocab, delta_budget=0)
    beam = BeamMaskSession(bare, 3, path=path)
    ref = BeamMaskSession(table, 3, path=path)
    n = len(vocab)
    rng = random.Random(9)
    for _ in range(20):
        assert beam.masks_packed() == ref.masks_packed()
        ids = []
        for row in ref.masks():
            valid = _valid_ids(row, n)
            if not valid:
                ids = None
                break
            ids.append(rng.choice(valid))
        if ids is None:
            beam.reset(3)
            ref.reset(3)
            continue
        assert beam.advance(ids) == ref.advance(ids)


def test_python_path_uses_delta_chains(table):
    """The pure-Python gather actually exercises the delta tables."""
    beam = BeamMaskSession(table, 4, path="python")
    n = len(table.vocab)
    rng = random.Random(13)
    for _ in range(30):
        ids = []
        for row in beam.masks():
            valid = _valid_ids(row, n)
            if not valid:
                ids = None
                break
            ids.append(rng.choice(valid))
        if ids is None:
            beam.reset(4)
            continue
        beam.advance(ids)
    assert beam.counters["delta_hits"] > 0


# ----------------------------------------------------------------------
# CD-memo counters
# ----------------------------------------------------------------------
def test_cd_memo_counters():
    """Context-dependent checks hit the walk memo: misses on first
    sight, hits on repeats, all counted on the lowering."""
    vocab = synthetic_vocab(size=384, seed=7)
    table = build_mask_table(xmlrpc(), vocab, ci_max_len=2)
    assert table.cd_ids, "ci_max_len=2 must leave CD tokens"
    lowering = table.lowering
    assert lowering.memo_hits == 0
    table.mask_row(0)
    misses = lowering.memo_misses
    assert misses > 0
    table.mask_row(0)
    assert lowering.memo_hits >= misses
    assert lowering.memo_misses == misses


# ----------------------------------------------------------------------
# HuggingFace tokenizer.json import
# ----------------------------------------------------------------------
def _bytes_to_unicode():
    bs = (
        list(range(ord("!"), ord("~") + 1))
        + list(range(0xA1, 0xAD))
        + list(range(0xAE, 0x100))
    )
    cs = bs[:]
    n = 0
    for b in range(256):
        if b not in bs:
            bs.append(b)
            cs.append(256 + n)
            n += 1
    return dict(zip(bs, (chr(c) for c in cs)))


def _write_tokenizer_json(path, tokens, *, byte_level=True, extra=None):
    remap = _bytes_to_unicode()
    vocab = {}
    for tid, raw in enumerate(tokens):
        text = (
            "".join(remap[b] for b in raw)
            if byte_level
            else raw.decode("utf-8")
        )
        vocab[text] = tid
    doc = {
        "model": {"type": "BPE", "vocab": vocab, "merges": []},
        "pre_tokenizer": (
            {"type": "ByteLevel", "add_prefix_space": False}
            if byte_level
            else {"type": "Whitespace"}
        ),
        "added_tokens": extra or [],
    }
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


def test_tokenizer_json_byte_level_roundtrip(tmp_path):
    """Byte-level stand-ins resolve to the raw bytes, including the
    256 byte-fallback tokens and invalid-UTF-8 sequences."""
    tokens = [bytes([b]) for b in range(256)]
    tokens += [b" the", b"<methodCall>", "日本".encode(), b"\xff\xfe"]
    special_id = len(tokens)
    path = _write_tokenizer_json(
        tmp_path / "tokenizer.json",
        tokens,
        extra=[{"id": special_id, "content": "<|endoftext|>"}],
    )
    vocab = Vocabulary.from_tokenizer_json(str(path))
    assert len(vocab) == special_id + 1
    assert list(vocab)[:special_id] == tokens
    assert vocab[special_id] == b"<|endoftext|>"
    # Round trip through save/from_file preserves the identity hash.
    out = tmp_path / "vocab.json"
    vocab.save(str(out))
    again = Vocabulary.from_file(str(out))
    assert again.vocab_hash == vocab.vocab_hash
    assert list(again) == list(vocab)


def test_tokenizer_json_plain_utf8(tmp_path):
    tokens = [b"a", b"bc", "é".encode()]
    path = _write_tokenizer_json(
        tmp_path / "tokenizer.json", tokens, byte_level=False
    )
    vocab = Vocabulary.from_tokenizer_json(str(path))
    assert list(vocab) == tokens


def test_tokenizer_json_rejects_holes_and_foreign(tmp_path):
    path = tmp_path / "tokenizer.json"
    path.write_text(
        json.dumps(
            {
                "model": {"type": "BPE", "vocab": {"a": 0, "b": 2}},
                "pre_tokenizer": {"type": "Whitespace"},
            }
        ),
        encoding="utf-8",
    )
    with pytest.raises(ValueError, match="holes"):
        Vocabulary.from_tokenizer_json(str(path))
    path.write_text(
        json.dumps({"model": {"type": "Unigram"}}), encoding="utf-8"
    )
    with pytest.raises(ValueError, match="model.vocab"):
        Vocabulary.from_tokenizer_json(str(path))


def test_tokenizer_vocab_masks_end_to_end(tmp_path):
    """An imported tokenizer vocabulary drives the mask pipeline."""
    tokens = [bytes([b]) for b in range(256)]
    tokens += [b"<methodCall>", b"<methodName>", b"abc"]
    path = _write_tokenizer_json(tmp_path / "tokenizer.json", tokens)
    vocab = Vocabulary.from_tokenizer_json(str(path))
    table = build_mask_table(xmlrpc(), vocab)
    session = MaskSession(table)
    row = session.mask()
    valid = _valid_ids(row, len(vocab))
    assert valid, "start state must admit some token"
    assert table.mask_row(0) == table.naive_row(0)
