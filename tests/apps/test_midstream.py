"""Mid-stream join scenarios (§3.3's always-enabled start mode).

"If the beginning of the text is known, then the starting tokenizers
can be enabled once at the beginning of the data. Otherwise, starting
tokenizers can be enabled at all times. … such a configuration will
look for all sequences of tokens starting at every byte alignment."

A network monitor joining a flow mid-capture needs exactly this: the
stream's head is missing and the tagger must synchronize on the next
message boundary.
"""

import pytest

from repro.apps.xmlrpc import ContentBasedRouter, WorkloadGenerator
from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.core.wiring import WiringOptions
from repro.grammar.examples import xmlrpc

ALWAYS = TaggerOptions(wiring=WiringOptions(start_mode="always"))
RECOVERY = TaggerOptions(wiring=WiringOptions(error_recovery=True))


@pytest.fixture(scope="module")
def truncated_stream():
    """A 5-message stream with the first 40% chopped off mid-message."""
    generator = WorkloadGenerator(seed=55)
    stream, truth = generator.stream(5)
    cut = int(len(stream) * 0.4)
    # Ensure the cut lands strictly inside a message.
    while stream[cut : cut + 1] == b"\n":
        cut += 1
    return stream[cut:], truth


class TestMidStreamJoin:
    def test_once_mode_misses_everything(self, truncated_stream):
        """Start-once cannot sync: the enabling pulse hit garbage."""
        data, _truth = truncated_stream
        tagger = BehavioralTagger(xmlrpc())
        closers = [
            t for t in tagger.tag(data) if t.token == "</methodCall>"
        ]
        assert closers == []

    def test_always_mode_syncs_on_next_message(self, truncated_stream):
        data, truth = truncated_stream
        tagger = BehavioralTagger(xmlrpc(), ALWAYS)
        router = ContentBasedRouter(grammar=xmlrpc(), tagger=tagger)
        routed = router.route(data)
        # Whole messages remaining in the suffix are routed correctly.
        whole = [
            (call, port)
            for call, port, _d in truth
            if call.encode() in data
        ]
        assert len(routed) >= len(whole) >= 3
        matched = [m for m in routed if m.payload.startswith(b"<methodCall>")]
        for message, (call, port) in zip(matched[-len(whole):], whole):
            assert message.port == port

    def test_error_recovery_also_syncs(self, truncated_stream):
        """§5.2 recovery achieves the same resync with start-once."""
        data, truth = truncated_stream
        tagger = BehavioralTagger(xmlrpc(), RECOVERY)
        events, errors = tagger.events_and_errors(data)
        assert errors  # the truncated head was flagged
        closers = [
            e for e in events if e.occurrence.terminal.name == "</methodCall>"
        ]
        whole = sum(1 for call, _p, _d in truth if call.encode() in data)
        assert len(closers) >= whole

    def test_always_mode_gate_level_agrees(self):
        grammar = xmlrpc()
        data = (b"runt tail></param></params></methodCall>"
                b"<methodCall><methodName>buy</methodName>"
                b"<params></params></methodCall>")
        behavioral = BehavioralTagger(grammar, ALWAYS)
        gate = GateLevelTagger(TaggerGenerator(ALWAYS).generate(grammar))
        assert behavioral.events(data) == gate.events(data)
