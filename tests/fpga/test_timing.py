"""Timing model and device presets."""

import pytest

from repro.errors import DeviceError
from repro.fpga.device import DEVICES, Device, get_device
from repro.fpga.techmap import techmap
from repro.fpga.timing import analyze_timing
from repro.rtl.netlist import Netlist

_TEST_DEVICE = Device(
    name="test", family="t", n_luts=1000, lut_inputs=4,
    t_lut=1.0, t_ff=0.5, r_base=0.1, r_fanout=0.01,
)


class TestDevicePresets:
    def test_lookup(self):
        assert get_device("virtex4-lx200").family == "virtex4"
        assert get_device("VIRTEXE-2000").family == "virtexe"

    def test_unknown_rejected(self):
        with pytest.raises(DeviceError, match="unknown device"):
            get_device("spartan")

    def test_capacities_match_datasheets(self):
        assert DEVICES["virtex4-lx200"].n_luts == 178_176
        assert DEVICES["virtexe-2000"].n_luts == 38_400

    def test_route_delay_monotone(self):
        device = get_device("virtex4-lx200")
        assert device.route_delay(100) > device.route_delay(1)

    def test_capacity_check(self):
        with pytest.raises(DeviceError, match="only"):
            get_device("virtexe-2000").check_capacity(10**6)

    def test_virtexe_uniformly_slower(self):
        v4, ve = get_device("virtex4-lx200"), get_device("virtexe-2000")
        assert ve.t_lut > v4.t_lut
        assert ve.r_base > v4.r_base


class TestPeriodModel:
    def test_single_lut_between_registers(self):
        nl = Netlist()
        a = nl.input("a")
        q1 = nl.reg(a)
        q2 = nl.reg(nl.and_(q1, a))
        nl.output("o", q2)
        mapping = techmap(nl)
        report = analyze_timing(mapping, _TEST_DEVICE)
        # FF -> route(a, fanout 2) -> LUT -> route(and, fanout 1) -> FF
        expected = 0.5 + (0.1 + 0.01 * 2) + 1.0 + (0.1 + 0.01 * 1)
        assert report.period_ns == pytest.approx(expected, abs=0.02)

    def test_two_level_path_slower(self):
        def build(levels):
            nl = Netlist()
            a = nl.input("a")
            q = nl.reg(a)
            x = q
            for _ in range(levels):
                # fanout>1 so the chain cannot be collapsed into 1 LUT
                y = nl.and_(x, a)
                nl.output(f"keep{len(nl.outputs)}", y)
                x = y
            nl.output("o", nl.reg(x))
            report = analyze_timing(techmap(nl), _TEST_DEVICE)
            return report.period_ns

        assert build(2) > build(1)

    def test_fanout_raises_period(self):
        def build(fanout):
            nl = Netlist()
            a = nl.input("a")
            q = nl.reg(a, name="hub")
            for k in range(fanout):
                nl.output(f"o{k}", nl.reg(nl.and_(q, a)))
            return analyze_timing(techmap(nl), _TEST_DEVICE).period_ns

        assert build(50) > build(2)

    def test_empty_design_floor(self):
        nl = Netlist()
        nl.output("o", nl.reg(nl.input("a")))
        report = analyze_timing(techmap(nl), _TEST_DEVICE)
        assert report.period_ns >= 1.5  # t_ff + t_lut floor

    def test_bandwidth_is_freq_times_8(self):
        nl = Netlist()
        nl.output("o", nl.reg(nl.and_(nl.input("a"), nl.input("b"))))
        report = analyze_timing(techmap(nl), _TEST_DEVICE)
        assert report.bandwidth_gbps == pytest.approx(
            report.frequency_mhz * 8 / 1000.0
        )


class TestPaperAnchors:
    """The calibrated model must hit the published anchor points."""

    def test_virtex4_533mhz_at_300_bytes(self, xmlrpc_grammar):
        from repro.core.generator import TaggerGenerator
        from repro.fpga.report import implement

        circuit = TaggerGenerator().generate(xmlrpc_grammar)
        report = implement(circuit, get_device("virtex4-lx200"))
        assert report.frequency_mhz == pytest.approx(533, rel=0.02)

    def test_virtexe_196mhz_at_300_bytes(self, xmlrpc_grammar):
        from repro.core.generator import TaggerGenerator
        from repro.fpga.report import implement

        circuit = TaggerGenerator().generate(xmlrpc_grammar)
        report = implement(circuit, get_device("virtexe-2000"))
        assert report.frequency_mhz == pytest.approx(196, rel=0.02)

    def test_worst_nets_reported(self, xmlrpc_grammar):
        from repro.core.generator import TaggerGenerator
        from repro.fpga.report import implement

        circuit = TaggerGenerator().generate(xmlrpc_grammar)
        report = implement(circuit, get_device("virtex4-lx200"))
        assert report.timing.worst_nets
        assert report.timing.worst_nets[0].fanout >= report.timing.worst_nets[-1].fanout
        assert "MHz" in report.timing.summary()
