"""Calibration audit: the committed device constants re-derive."""

import pytest

from repro.fpga.calibrate import (
    VIRTEX4_ANCHORS,
    calibration_report,
    fit_virtex4,
    fit_virtexe_scale,
)
from repro.fpga.device import VIRTEX4_LX200, VIRTEXE_2000


@pytest.fixture(scope="module")
def fitted():
    return fit_virtex4()


class TestVirtex4Fit:
    def test_reproduces_committed_constants(self, fitted):
        r_base, r_fanout = fitted
        assert r_base == pytest.approx(VIRTEX4_LX200.r_base, rel=0.02)
        assert r_fanout == pytest.approx(VIRTEX4_LX200.r_fanout, rel=0.02)

    def test_constants_are_physical(self, fitted):
        r_base, r_fanout = fitted
        assert 0 < r_base < 2.0
        assert 0 < r_fanout < 0.05

    def test_anchors_hit_exactly(self, fitted):
        from repro.bench.scaling import scale_point_grammar
        from repro.core.generator import TaggerGenerator
        from repro.fpga.device import Device
        from repro.fpga.techmap import techmap
        from repro.fpga.timing import analyze_timing

        r_base, r_fanout = fitted
        device = Device(
            name="refit", family="virtex4", n_luts=178_176, lut_inputs=4,
            t_lut=0.20, t_ff=0.30, r_base=r_base, r_fanout=r_fanout,
        )
        for anchor in VIRTEX4_ANCHORS:
            circuit = TaggerGenerator().generate(
                scale_point_grammar(anchor.copies)
            )
            timing = analyze_timing(techmap(circuit.netlist), device)
            assert timing.frequency_mhz == pytest.approx(
                anchor.frequency_mhz, rel=0.001
            )


class TestVirtexEFit:
    def test_scale_matches_committed_ratio(self):
        scale = fit_virtexe_scale(VIRTEX4_LX200)
        committed = VIRTEXE_2000.t_lut / VIRTEX4_LX200.t_lut
        assert scale == pytest.approx(committed, rel=0.02)


def test_calibration_report_renders():
    text = calibration_report()
    assert "r_base" in text and "VirtexE scale" in text
