"""4-LUT technology mapping: counts on hand-built netlists."""


from repro.fpga.techmap import techmap
from repro.rtl.netlist import Netlist


class TestBasicCovering:
    def test_single_gate_one_lut(self):
        nl = Netlist()
        a, b = nl.input("a"), nl.input("b")
        nl.output("o", nl.and_(a, b))
        assert techmap(nl).n_luts == 1

    def test_four_input_gate_one_lut(self):
        nl = Netlist()
        bits = [nl.input(f"i{k}") for k in range(4)]
        nl.output("o", nl.and_(*bits))
        assert techmap(nl).n_luts == 1

    def test_five_input_gate_two_luts(self):
        nl = Netlist()
        bits = [nl.input(f"i{k}") for k in range(5)]
        nl.output("o", nl.and_(*bits))
        assert techmap(nl).n_luts == 2

    def test_eight_input_gate(self):
        nl = Netlist()
        bits = [nl.input(f"i{k}") for k in range(8)]
        nl.output("o", nl.and_(*bits))
        # two 4-input chunks + combiner; greedy merges the combiner
        # into neither (both chunks multi-leaf) -> 3 LUTs.
        assert techmap(nl).n_luts == 3

    def test_inverters_are_free(self):
        nl = Netlist()
        a, b = nl.input("a"), nl.input("b")
        nl.output("o", nl.and_(nl.not_(a), nl.not_(b)))
        assert techmap(nl).n_luts == 1

    def test_buffers_are_free(self):
        nl = Netlist()
        a = nl.input("a")
        nl.output("o", nl.buf(nl.buf(a)))
        assert techmap(nl).n_luts == 0

    def test_single_fanout_chain_absorbed(self):
        # (a AND b) OR c : 3 distinct leaves -> one LUT.
        nl = Netlist()
        a, b, c = nl.input("a"), nl.input("b"), nl.input("c")
        nl.output("o", nl.or_(nl.and_(a, b), c))
        assert techmap(nl).n_luts == 1

    def test_shared_node_not_absorbed(self):
        nl = Netlist()
        a, b, c, d = (nl.input(x) for x in "abcd")
        shared = nl.and_(a, b)
        nl.output("o1", nl.or_(shared, c))
        nl.output("o2", nl.or_(shared, d))
        assert techmap(nl).n_luts == 3

    def test_binary_tree_repacked_to_4ary(self):
        # A binary OR tree over 16 inputs: 15 binary gates, but 4-LUT
        # covering needs only ceil(16/4)+1 = 5 LUTs.
        nl = Netlist()
        bits = [nl.input(f"i{k}") for k in range(16)]
        nl.output("o", nl.or_tree(bits))
        assert techmap(nl).n_luts == 5


class TestSweeps:
    def test_constant_gates_swept(self):
        nl = Netlist()
        a = nl.input("a")
        # and with const0 folds at build time; build one manually
        p = nl.placeholder("p")
        nl.drive_gate(p, __import__("repro.rtl.netlist", fromlist=["GateKind"]).GateKind.AND,
                      (a, nl.const(0)))
        nl.output("o", nl.reg(p))
        result = techmap(nl)
        assert result.n_luts == 0
        assert result.n_registers == 0  # reg of const0 with init 0 swept

    def test_dead_logic_swept(self):
        nl = Netlist()
        a, b = nl.input("a"), nl.input("b")
        nl.and_(a, b, name="dead")
        nl.output("o", a)
        result = techmap(nl)
        assert result.n_luts == 0
        assert result.n_swept_gates >= 1

    def test_constant_register_chain_swept(self):
        nl = Netlist()
        q = nl.delay(nl.const(0), 3)
        nl.output("o", nl.or_(q, nl.input("a")))
        result = techmap(nl)
        assert result.n_registers == 0
        assert result.n_luts == 0  # or(0, a) -> passthrough

    def test_register_with_nonmatching_init_kept(self):
        nl = Netlist()
        q = nl.reg(nl.const(0), init=1)  # emits a 1 then 0s: not const
        nl.output("o", q)
        assert techmap(nl).n_registers == 1


class TestRegisters:
    def test_registers_cost_no_luts(self):
        nl = Netlist()
        a = nl.input("a")
        nl.output("o", nl.delay(a, 5))
        result = techmap(nl)
        assert result.n_luts == 0
        assert result.n_registers == 5

    def test_bare_inverted_d_costs_route_through(self):
        nl = Netlist()
        a = nl.input("a")
        nl.output("o", nl.reg(nl.not_(a)))
        assert techmap(nl).n_luts == 1

    def test_enable_pin_is_free(self):
        nl = Netlist()
        a, en = nl.input("a"), nl.input("en")
        nl.output("o", nl.reg(a, enable=en))
        assert techmap(nl).n_luts == 0


class TestMappedFanout:
    def test_fanout_counts_lut_and_ff_sinks(self):
        nl = Netlist()
        a, b = nl.input("a"), nl.input("b")
        x = nl.and_(a, b, name="x")
        nl.output("o1", nl.reg(x))
        nl.output("o2", nl.or_(x, a))
        result = techmap(nl)
        x_uid = x.uid
        assert result.lut_fanout[x_uid] == 2

    def test_max_fanout_reporting(self, xmlrpc_grammar):
        from repro.core.generator import TaggerGenerator

        circuit = TaggerGenerator().generate(xmlrpc_grammar)
        result = techmap(circuit.netlist)
        name, fanout = result.max_fanout()
        assert fanout > 10
        histogram = result.fanout_histogram(5)
        assert len(histogram) == 5
        assert histogram[0][1] >= histogram[1][1]


class TestWholeTagger:
    def test_lut_count_stable(self, xmlrpc_grammar):
        from repro.core.generator import TaggerGenerator

        circuit = TaggerGenerator().generate(xmlrpc_grammar)
        result = techmap(circuit.netlist)
        # Regression guard: the canonical XML-RPC tagger maps to a
        # stable LUT count (drift means a generator change).
        assert 550 <= result.n_luts <= 800
        assert result.n_registers > 400
