"""Utilization reports (Table 1 rows)."""

import math

import pytest

from repro.core.generator import TaggerGenerator
from repro.fpga.device import get_device
from repro.fpga.report import UtilizationReport, implement


@pytest.fixture(scope="module")
def report(request):
    from repro.grammar.examples import xmlrpc

    circuit = TaggerGenerator().generate(xmlrpc())
    return implement(circuit, get_device("virtex4-lx200"))


class TestReport:
    def test_row_columns(self, report):
        device, mhz, gbps, n_bytes, luts, ratio = report.row()
        assert device == "Virtex4 LX200"
        assert n_bytes == 289
        assert math.isclose(ratio, luts / n_bytes, rel_tol=0.01)
        assert gbps == pytest.approx(mhz * 8 / 1000, abs=0.02)

    def test_luts_per_byte(self, report):
        assert 1.5 <= report.luts_per_byte <= 3.0

    def test_utilization_fraction(self, report):
        assert 0 < report.utilization < 0.05

    def test_format_row_and_header(self, report):
        assert "Virtex4" in report.format_row()
        assert "LUTs" in UtilizationReport.header()

    def test_capacity_enforced(self):
        from repro.bench.scaling import scale_point_grammar
        from repro.errors import DeviceError
        from repro.fpga.device import Device

        tiny = Device(
            name="tiny", family="t", n_luts=10, lut_inputs=4,
            t_lut=0.2, t_ff=0.3, r_base=0.2, r_fanout=0.004,
        )
        circuit = TaggerGenerator().generate(scale_point_grammar(1))
        with pytest.raises(DeviceError):
            implement(circuit, tiny)
        # but can be skipped for what-if studies
        implement(circuit, tiny, check_capacity=False)
