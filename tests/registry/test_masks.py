"""Mask artifacts in the content-addressed registry: publish with
dedup, load on the exact interned state ids, heal foreign blobs,
inspect, and garbage-collect — keyed ``content_id × vocab_hash``."""

import os

import pytest

from repro.apps.structgen import build_mask_table, mask_key, synthetic_vocab
from repro.core.generator import TaggerOptions
from repro.core.wiring import WiringOptions
from repro.grammar.examples import if_then_else, xmlrpc
from repro.service.registry import Registry, RegistryError


@pytest.fixture()
def registry(tmp_path):
    return Registry(str(tmp_path / "store"))


@pytest.fixture(scope="module")
def vocab():
    return synthetic_vocab(size=384, seed=13)


def test_publish_masks_and_dedup(registry, vocab):
    ref = registry.publish("xmlrpc", xmlrpc())
    first = registry.publish_masks(ref, vocab)
    assert first["rebuilt"] is True
    assert first["vocab_size"] == 384
    assert first["ci"] + first["cd"] == 384
    assert os.path.exists(
        os.path.join(registry.root, "objects", first["key"] + ".msk")
    )
    again = registry.publish_masks(ref, vocab)
    assert again["rebuilt"] is False
    assert again["key"] == first["key"]


def test_load_masks_serves_identical_rows(registry, vocab):
    ref = registry.publish("xmlrpc", xmlrpc())
    registry.publish_masks(ref, vocab)
    # Fresh Registry: no in-memory caches, everything off disk.
    table = Registry(registry.root).load_masks(ref)
    fresh = build_mask_table(xmlrpc(), vocab)
    assert table.rows == fresh.rows
    assert table.cd_ids == fresh.cd_ids
    for state in (0, 1, table.n_states - 1):
        assert bytes(table.mask_row(state)) == bytes(
            fresh.mask_row(state)
        )


def test_load_masks_requires_disambiguation(registry, vocab):
    ref = registry.publish("xmlrpc", xmlrpc())
    with pytest.raises(RegistryError, match="0 mask"):
        registry.load_masks(ref)
    registry.publish_masks(ref, vocab)
    other = synthetic_vocab(size=512, seed=99)
    registry.publish_masks(ref, other)
    with pytest.raises(RegistryError, match="2 mask"):
        registry.load_masks(ref)
    assert registry.load_masks(ref, vocab.vocab_hash) is not None
    with pytest.raises(RegistryError, match="precompute"):
        registry.load_masks(ref, "ee" * 32)


def test_heal_foreign_blob(registry, vocab):
    """A blob whose rows were built against different tables (wiring
    drift) fails the fingerprint check and is rebuilt in place from
    the vocabulary embedded in the blob."""
    ref = registry.publish("xmlrpc", xmlrpc())
    summary = registry.publish_masks(ref, vocab)
    foreign = build_mask_table(
        xmlrpc(),
        vocab,
        TaggerOptions(wiring=WiringOptions(error_recovery=True)),
    )
    path = os.path.join(
        registry.root, "objects", summary["key"] + ".msk"
    )
    with open(path, "wb") as fh:
        fh.write(foreign.to_blob())

    healed = Registry(registry.root).load_masks(ref)
    fresh = build_mask_table(xmlrpc(), vocab)
    assert healed.rows == fresh.rows
    # And the healed blob was written back.
    reloaded = Registry(registry.root).load_masks(ref)
    assert reloaded.rows == fresh.rows


def test_unreadable_blob_is_an_error(registry, vocab):
    ref = registry.publish("xmlrpc", xmlrpc())
    summary = registry.publish_masks(ref, vocab)
    path = os.path.join(
        registry.root, "objects", summary["key"] + ".msk"
    )
    with open(path, "wb") as fh:
        fh.write(b"JUNKJUNKJUNK")
    with pytest.raises(RegistryError, match="precompute"):
        Registry(registry.root).load_masks(ref)
    os.remove(path)
    with pytest.raises(RegistryError, match="precompute"):
        Registry(registry.root).load_masks(ref)


def test_inspect_describes_masks(registry, vocab):
    ref = registry.publish("xmlrpc", xmlrpc())
    info = registry.inspect(ref)
    assert info.get("masks", {}) == {}
    summary = registry.publish_masks(ref, vocab)
    info = registry.inspect(ref)
    described = info["masks"][vocab.vocab_hash[:16]]
    assert described["vocab_size"] == 384
    assert described["states"] == summary["states"]
    assert described["ci"] + described["cd"] == 384
    assert 0.0 <= described["ci_fraction"] <= 1.0
    assert described["abi"] == 1
    assert described["key"] == summary["key"]

    listing = [
        e for e in registry.list() if e["name"] == "xmlrpc"
    ][0]
    assert listing["versions"]["1"]["masks"] == 1


def test_gc_keeps_referenced_masks(registry, vocab):
    ref = registry.publish("xmlrpc", xmlrpc())
    summary = registry.publish_masks(ref, vocab)
    objects = os.path.join(registry.root, "objects")
    orphan = os.path.join(objects, "f" * 64 + ".msk")
    with open(orphan, "wb") as fh:
        fh.write(b"RMSKorphan")
    removed = registry.gc()
    assert removed >= 1
    assert not os.path.exists(orphan)
    assert os.path.exists(
        os.path.join(objects, summary["key"] + ".msk")
    )
    assert Registry(registry.root).load_masks(ref) is not None


def test_mask_key_tracks_content_and_vocab(registry, vocab):
    """Different grammar content or vocabulary → different key; the
    paper's content-addressing discipline extended to masks."""
    xml_ref = registry.publish("xmlrpc", xmlrpc())
    ite_ref = registry.publish("ifelse", if_then_else())
    a = registry.publish_masks(xml_ref, vocab)
    b = registry.publish_masks(ite_ref, vocab)
    c = registry.publish_masks(
        xml_ref, synthetic_vocab(size=512, seed=99)
    )
    assert len({a["key"], b["key"], c["key"]}) == 3
    entry = registry.inspect(xml_ref)
    assert a["key"] == mask_key(entry["content"], vocab.vocab_hash)


def test_inspect_reports_delta_coverage(registry, vocab):
    """``registry inspect`` surfaces the format rev and the delta
    section's coverage for current-format blobs."""
    ref = registry.publish("xmlrpc", xmlrpc())
    registry.publish_masks(ref, vocab)
    info = registry.inspect(ref)
    described = info["masks"][vocab.vocab_hash[:16]]
    assert described["rev"] == 2
    deltas = described["deltas"]
    assert deltas["rows_deltified"] > 0
    assert deltas["payload_bytes"] > 0
    assert deltas["mean_popcount"] >= 0.0


def test_old_format_blob_heals_with_deltas(registry, vocab):
    """A rev-1 blob (no delta section) loads cleanly and the heal
    path re-publishes it with deltas appended — rows untouched."""
    ref = registry.publish("xmlrpc", xmlrpc())
    # delta_budget=0 writes a blob exactly like a pre-delta publisher.
    registry.publish_masks(ref, vocab, delta_budget=0)
    info = registry.inspect(ref)
    described = info["masks"][vocab.vocab_hash[:16]]
    assert described["rev"] == 1
    assert "deltas" not in described

    healed = Registry(registry.root).load_masks(ref)
    assert healed.has_deltas
    fresh = build_mask_table(xmlrpc(), vocab)
    assert healed.rows == fresh.rows
    assert healed.delta_stats() == fresh.delta_stats()

    # The upgraded blob is on disk: a cold registry sees rev 2.
    info = Registry(registry.root).inspect(ref)
    described = info["masks"][vocab.vocab_hash[:16]]
    assert described["rev"] == 2
    assert described["deltas"]["rows_deltified"] > 0


def _race_loader(root, ref, vocab_hash, barrier, out_q):
    """Child process: wait at the barrier, then load (and heal) the
    rev-1 blob; ship the loaded rows back for equality checks."""
    from repro.service.registry import Registry

    barrier.wait(timeout=30)
    table = Registry(root).load_masks(ref, vocab_hash)
    out_q.put((table.rows, list(table.cd_ids), table.has_deltas))


def test_concurrent_heal_republish_is_atomic(registry, vocab):
    """Two processes racing the rev-1 → rev-2 heal re-publish while a
    third inspects: every inspect sees a whole blob (rev 1 or rev 2,
    never a read error), and both healed loads serve identical rows.
    The heal routes through mkstemp + os.replace, so a half-written
    artifact is never visible at the published path."""
    import multiprocessing as mp

    ref = registry.publish("xmlrpc", xmlrpc())
    registry.publish_masks(ref, vocab, delta_budget=0)
    info = registry.inspect(ref)
    assert info["masks"][vocab.vocab_hash[:16]]["rev"] == 1

    ctx = mp.get_context()
    barrier = ctx.Barrier(3)
    out_q = ctx.Queue()
    loaders = [
        ctx.Process(
            target=_race_loader,
            args=(registry.root, ref, vocab.vocab_hash, barrier, out_q),
        )
        for _ in range(2)
    ]
    for proc in loaders:
        proc.start()
    barrier.wait(timeout=30)
    # Inspect continuously while the heals re-publish underneath.
    while any(proc.is_alive() for proc in loaders):
        described = Registry(registry.root).inspect(ref)["masks"][
            vocab.vocab_hash[:16]
        ]
        assert "error" not in described, described
        assert described["rev"] in (1, 2), described
    results = [out_q.get(timeout=30) for _ in loaders]
    for proc in loaders:
        proc.join(timeout=30)
        assert proc.exitcode == 0

    fresh = build_mask_table(xmlrpc(), vocab)
    for rows, cd_ids, has_deltas in results:
        assert rows == fresh.rows
        assert cd_ids == list(fresh.cd_ids)
        assert has_deltas
    # The store converged on one whole rev-2 blob.
    described = Registry(registry.root).inspect(ref)["masks"][
        vocab.vocab_hash[:16]
    ]
    assert described["rev"] == 2
    assert described["deltas"]["rows_deltified"] > 0
