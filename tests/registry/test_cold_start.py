"""Cross-process cold-start differential: publish here, load there.

A grammar is published in this process; fresh subprocesses then load
it from the store under every engine-availability permutation
(``REPRO_DISABLE_NATIVE`` / ``REPRO_DISABLE_NUMPY``) and must produce
byte-for-byte identical events — both against an in-process
compilation from the canonical source *inside* each subprocess, and
across all permutations against this process's own baseline.
"""

import os
import random
import subprocess
import sys

import pytest

import repro
from repro.core.tagger import BehavioralTagger
from repro.errors import GrammarError
from repro.grammar.cfg import Grammar
from repro.grammar.examples import if_then_else, xmlrpc
from repro.grammar.lexspec import LexSpec
from repro.grammar.symbols import NonTerminal, Terminal
from repro.grammar.writer import write_yacc_grammar
from repro.service.registry import Registry

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Engine-availability permutations a deployment might load under.
_ENVIRONMENTS = [
    {},
    {"REPRO_DISABLE_NATIVE": "1"},
    {"REPRO_DISABLE_NATIVE": "1", "REPRO_DISABLE_NUMPY": "1"},
]

_SUBPROCESS = """
import sys
from repro.core.capabilities import resolve_engine
from repro.core.tagger import BehavioralTagger
from repro.grammar.yacc_parser import parse_yacc_grammar
from repro.service.registry import Registry

root, ref, source_path, data_hex = sys.argv[1:5]
data = bytes.fromhex(data_hex)
with open(source_path, encoding="utf-8") as fh:
    source = fh.read()
engine = resolve_engine("auto")
direct = BehavioralTagger(
    parse_yacc_grammar(source, name="g"), engine=engine
).tag(data)
loaded = Registry(root).load(ref).tagger(engine=engine).tag(data)
if repr(direct) != repr(loaded):
    sys.stderr.write("direct: %r\\nloaded: %r\\n" % (direct, loaded))
    sys.exit(1)
sys.stdout.write(repr(loaded))
"""


def _fuzz_grammar(seed: int) -> Grammar:
    """A seeded small acyclic grammar over prefix-free one-char tokens
    (the deterministic cousin of test_fuzz_grammars' strategy)."""
    rng = random.Random(seed)
    lexspec = LexSpec()
    terminals = []
    for char in "abcdefgh"[: rng.randint(3, 6)]:
        lexspec.define_literal(char)
        terminals.append(Terminal(char))
    grammar = Grammar(f"fuzz{seed}", lexspec)
    nonterminals = [NonTerminal(f"S{i}") for i in range(rng.randint(2, 4))]
    for i, lhs in enumerate(nonterminals):
        for _ in range(rng.randint(1, 3)):
            rhs = []
            for _ in range(rng.randint(1, 4)):
                deeper = nonterminals[i + 1 :]
                if deeper and rng.random() < 0.4:
                    rhs.append(rng.choice(deeper))
                else:
                    rhs.append(rng.choice(terminals))
            grammar.add(lhs, rhs)
    grammar.start = nonterminals[0]
    grammar.validate()
    return grammar


def _derive(grammar: Grammar, seed: int) -> bytes:
    rng = random.Random(seed)
    out = []

    def expand(symbol):
        if isinstance(symbol, Terminal):
            out.append(symbol.name.encode())
            return
        for child in rng.choice(grammar.productions_for(symbol)).rhs:
            expand(child)

    expand(grammar.start)
    return b" ".join(out)


def _seeded_fuzz_case():
    # A fixed scan over seeds keeps the case deterministic while
    # skipping the occasional degenerate draw (unused terminals,
    # validation failures).
    for seed in range(7, 64):
        try:
            grammar = _fuzz_grammar(seed)
        except GrammarError:
            continue
        data = _derive(grammar, seed)
        if grammar.used_terminals() and data:
            return grammar, data
    raise AssertionError("no viable fuzz seed in range")


def _cases():
    fuzz_grammar, fuzz_data = _seeded_fuzz_case()
    return [
        ("xmlrpc", xmlrpc(),
         b"<methodCall><methodName>add</methodName>"
         b"<params><param><value><int>4</int></value></param></params>"
         b"</methodCall>"),
        ("ifelse", if_then_else(), b"if true then go else stop"),
        ("fuzz", fuzz_grammar, fuzz_data),
    ]


@pytest.mark.parametrize("name,grammar,data",
                         _cases(), ids=lambda v: v if isinstance(v, str)
                         else "")
def test_cold_load_matches_in_process_everywhere(tmp_path, name,
                                                 grammar, data):
    store = str(tmp_path / "store")
    ref = Registry(store).publish(name, grammar)
    source_path = tmp_path / "grammar.y"
    source_path.write_text(write_yacc_grammar(grammar), encoding="utf-8")

    baseline = repr(BehavioralTagger(grammar, engine="compiled").tag(data))

    for overrides in _ENVIRONMENTS:
        env = dict(os.environ, PYTHONPATH=_SRC_DIR, **overrides)
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS,
             store, ref, str(source_path), data.hex()],
            capture_output=True, text=True, env=env, timeout=300,
        )
        label = ",".join(overrides) or "default"
        assert proc.returncode == 0, (
            f"[{label}] subprocess differential failed:\n{proc.stderr}"
        )
        assert proc.stdout == baseline, (
            f"[{label}] events drifted from the publisher's baseline"
        )
