"""The grammar registry: named, versioned, content-addressed artifacts.

Covers the publish/load round trip (bit-exact events against direct
compilation), content-addressed dedup of structurally-equal grammars
(the on-disk fix for the identity-keyed in-process caches), version
resolution, store healing, gc, the `from_ref` construction API, the
spec-over-the-spawn-boundary path, and the CLI surface.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.core.tagger import BehavioralTagger
from repro.grammar.examples import if_then_else, xmlrpc
from repro.grammar.writer import write_yacc_grammar
from repro.grammar.yacc_parser import parse_yacc_grammar
from repro.service.registry import Registry, RegistryError, parse_ref

XML_SAMPLE = (
    b"<methodCall><methodName>add</methodName>"
    b"<params><param><value><int>4</int></value></param></params>"
    b"</methodCall>"
)
ITE_SAMPLE = b"if true then go else stop"


@pytest.fixture()
def store(tmp_path) -> str:
    return str(tmp_path / "store")


def _object_files(store: str) -> list[str]:
    try:
        return sorted(
            f for f in os.listdir(os.path.join(store, "objects"))
            if f.endswith(".art")
        )
    except OSError:
        return []


# ----------------------------------------------------------------------
# publish / load round trip
# ----------------------------------------------------------------------
def test_publish_returns_pinned_ref(store):
    ref = Registry(store).publish("xmlrpc", xmlrpc())
    assert ref == "xmlrpc@1"
    assert parse_ref(ref) == ("xmlrpc", 1)


@pytest.mark.parametrize("engine", ["compiled", "auto"])
def test_loaded_artifact_tags_identically(store, engine):
    expected = BehavioralTagger(xmlrpc(), engine=engine).tag(XML_SAMPLE)
    ref = Registry(store).publish("xmlrpc", xmlrpc())
    # A fresh Registry: nothing shared with the publisher but the disk.
    artifact = Registry(store).load(ref)
    got = artifact.tagger(engine=engine).tag(XML_SAMPLE)
    assert repr(got) == repr(expected)


def test_artifact_metadata(store):
    registry = Registry(store)
    ref = registry.publish("xmlrpc", xmlrpc())
    artifact = registry.load(ref)
    assert artifact.ref == ref
    assert artifact.grammar.name == xmlrpc().name
    assert artifact.nbytes > 0


# ----------------------------------------------------------------------
# content addressing (the WeakKeyDictionary cache-miss fix)
# ----------------------------------------------------------------------
def test_structurally_equal_grammars_share_one_artifact(store):
    registry = Registry(store)
    ref1 = registry.publish("xmlrpc", xmlrpc())
    # A second, structurally-equal grammar object (fresh parse of the
    # same source). The in-process engine caches would miss on it;
    # the store must not.
    reparsed = parse_yacc_grammar(
        write_yacc_grammar(xmlrpc()), name="xmlrpc"
    )
    ref2 = registry.publish("xmlrpc", reparsed)
    assert ref1 == ref2
    assert len(_object_files(store)) == 1


def test_same_content_loads_shared_artifact_object(store):
    registry = Registry(store)
    ref = registry.publish("xmlrpc", xmlrpc())
    assert registry.load(ref) is registry.load(ref)


# ----------------------------------------------------------------------
# versioning
# ----------------------------------------------------------------------
def test_new_content_bumps_version_and_latest_wins(store):
    registry = Registry(store)
    assert registry.publish("g", if_then_else()) == "g@1"
    assert registry.publish("g", xmlrpc()) == "g@2"
    assert registry.load("g").ref == "g@2"
    assert registry.load("g@1").grammar.lexspec.total_pattern_bytes() == (
        if_then_else().lexspec.total_pattern_bytes()
    )


def test_unknown_refs_raise(store):
    registry = Registry(store)
    with pytest.raises(RegistryError, match="unknown grammar"):
        registry.load("nope")
    registry.publish("g", if_then_else())
    with pytest.raises(RegistryError, match="no version 9"):
        registry.load("g@9")


def test_bad_names_and_refs_raise(store):
    registry = Registry(store)
    with pytest.raises(RegistryError):
        registry.publish(".hidden", if_then_else())
    with pytest.raises(RegistryError):
        registry.publish("a/b", if_then_else())
    with pytest.raises(RegistryError, match="version must be an integer"):
        parse_ref("g@two")


# ----------------------------------------------------------------------
# store robustness
# ----------------------------------------------------------------------
def test_load_heals_a_deleted_blob(store):
    ref = Registry(store).publish("g", if_then_else())
    for fname in _object_files(store):
        os.unlink(os.path.join(store, "objects", fname))
    artifact = Registry(store).load(ref)
    got = artifact.tagger(engine="compiled").tag(ITE_SAMPLE)
    expected = BehavioralTagger(if_then_else()).tag(ITE_SAMPLE)
    assert repr(got) == repr(expected)
    # ... and the blob was republished for this interpreter.
    assert len(_object_files(store)) == 1


def test_gc_removes_only_orphans(store):
    registry = Registry(store)
    registry.publish("g", if_then_else())
    keep = _object_files(store)
    orphan = os.path.join(store, "objects", "0" * 64 + ".art")
    with open(orphan, "wb") as fh:
        fh.write(b"junk")
    assert registry.gc() == 1
    assert _object_files(store) == keep


def test_list_and_inspect_shapes(store):
    registry = Registry(store)
    registry.publish("g", if_then_else())
    (entry,) = registry.list()
    assert entry["name"] == "g"
    assert entry["latest"] == 1
    info = registry.inspect("g")
    assert info["ref"] == "g@1"
    assert info["source_bytes"] > 0
    (obj,) = info["objects"].values()
    assert obj["dense"] is True
    assert obj["states"] > 1


# ----------------------------------------------------------------------
# construction APIs riding on refs
# ----------------------------------------------------------------------
def test_behavioral_tagger_from_ref(store):
    ref = Registry(store).publish("xmlrpc", xmlrpc())
    tagger = BehavioralTagger.from_ref(ref, registry=store)
    expected = BehavioralTagger(xmlrpc()).tag(XML_SAMPLE)
    assert repr(tagger.tag(XML_SAMPLE)) == repr(expected)


def test_tagger_spec_builds_from_registry_ref(store):
    from repro.service import TaggerSpec

    ref = Registry(store).publish("xmlrpc", xmlrpc())
    spec = TaggerSpec(registry_ref=ref, registry_root=store)
    session = spec.build().new_session()
    got = session.feed(XML_SAMPLE) + session.finish()
    direct = TaggerSpec(grammar=xmlrpc()).build().new_session()
    expected = direct.feed(XML_SAMPLE) + direct.finish()
    assert repr(got) == repr(expected)


def test_tagger_spec_without_grammar_or_ref_raises(store):
    from repro.service import TaggerSpec
    from repro.service.errors import ServiceError

    with pytest.raises(ServiceError, match="grammar or a registry_ref"):
        TaggerSpec().build()


def test_router_spec_builds_from_registry_ref(store):
    from repro.service import RouterSpec

    ref = Registry(store).publish("xmlrpc", xmlrpc())
    spec = RouterSpec(registry_ref=ref, registry_root=store)
    session = spec.build().new_session()
    got = session.feed(XML_SAMPLE + b" ") + session.finish()
    direct = RouterSpec().build().new_session()
    expected = direct.feed(XML_SAMPLE + b" ") + direct.finish()
    assert repr(got) == repr(expected)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_publish_list_inspect_gc(store, capsys):
    assert cli_main(
        ["registry", "--store", store, "publish", "g", "if-then-else"]
    ) == 0
    assert capsys.readouterr().out.strip() == "g@1"

    assert cli_main(["registry", "--store", store, "list", "--json"]) == 0
    (entry,) = json.loads(capsys.readouterr().out)
    assert entry["name"] == "g"

    assert cli_main(["registry", "--store", store, "inspect", "g@1"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["ref"] == "g@1"

    assert cli_main(["registry", "--store", store, "gc"]) == 0
    assert "removed 0" in capsys.readouterr().out


def test_cli_unknown_ref_is_a_clean_error(store, capsys):
    assert cli_main(
        ["registry", "--store", store, "inspect", "ghost"]
    ) == 2
    assert "unknown grammar" in capsys.readouterr().err
