"""Command-line interface."""


from repro.cli import main


class TestTag:
    def test_tag_builtin_grammar(self, tmp_path, capsys):
        source = tmp_path / "in.txt"
        source.write_bytes(b"if true then go else stop")
        assert main(["tag", "if-then-else", str(source)]) == 0
        out = capsys.readouterr().out
        assert "if@p0.0" in out and "stop@" in out

    def test_tag_gate_level(self, tmp_path, capsys):
        source = tmp_path / "in.txt"
        source.write_bytes(b"go")
        assert main(["tag", "if-then-else", str(source), "--gate-level"]) == 0
        assert "go@" in capsys.readouterr().out

    def test_tag_stack_mode_rejects(self, tmp_path, capsys):
        source = tmp_path / "in.txt"
        source.write_bytes(b"((0)")
        assert main(["tag", "balanced-parens", str(source), "--stack"]) == 2
        assert "error" in capsys.readouterr().err

    def test_tag_stack_mode_depths(self, tmp_path, capsys):
        source = tmp_path / "in.txt"
        source.write_bytes(b"(0)")
        assert main(["tag", "balanced-parens", str(source), "--stack"]) == 0
        assert "depth=1" in capsys.readouterr().out

    def test_tag_custom_grammar_file(self, tmp_path, capsys):
        grammar = tmp_path / "toy.y"
        grammar.write_text('WORD [a-z]+\n%%\ns: "hi" WORD;\n')
        source = tmp_path / "in.txt"
        source.write_bytes(b"hi there")
        assert main(["tag", str(grammar), str(source)]) == 0
        assert "WORD@" in capsys.readouterr().out


class TestInfoGenerate:
    def test_info(self, capsys):
        assert main(["info", "if-then-else"]) == 0
        out = capsys.readouterr().out
        assert "Follow sets" in out and "E → if C then E else E" in out

    def test_generate_with_vhdl_and_report(self, tmp_path, capsys):
        vhdl = tmp_path / "out.vhd"
        assert (
            main(
                [
                    "generate", "if-then-else",
                    "--vhdl", str(vhdl),
                    "--report", "--device", "virtex4-lx200",
                ]
            )
            == 0
        )
        assert vhdl.exists()
        out = capsys.readouterr().out
        assert "MHz" in out and "LUTs" in out

    def test_missing_grammar_file(self, capsys):
        assert main(["info", "/nonexistent/g.y"]) == 2


class TestRoute:
    def test_clean_routing_exit_zero(self, capsys):
        assert main(["route", "--messages", "5", "--seed", "3"]) == 0
        assert "5/5" in capsys.readouterr().out

    def test_naive_on_adversarial_fails(self, capsys):
        code = main(
            [
                "route", "--messages", "8", "--adversarial", "1.0",
                "--naive", "--seed", "3",
            ]
        )
        assert code == 1


class TestStructgen:
    def test_precompute_autopublishes_builtin(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = [
            "structgen", "precompute", "if-then-else",
            "--store", store, "--vocab-size", "384",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "if-then-else@1" in out and "rebuilt" in out
        # Second run is a content-addressed cache hit.
        assert main(argv) == 0
        assert "cached" in capsys.readouterr().out

    def test_bench_reports_split(self, capsys):
        assert main(
            [
                "structgen", "bench", "--grammar", "if-then-else",
                "--vocab-size", "384", "--steps", "40",
                "--naive-steps", "5", "--repeat", "1", "--no-record",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "masks/s (precomputed path)" in out
        assert "masks/s (per-token rescan)" in out
        assert "speedup" in out


class TestExperiments:
    def test_ablation_command(self, capsys):
        assert main(["ablation"]) == 0
        assert "case-chain" in capsys.readouterr().out
