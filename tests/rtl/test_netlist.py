"""Netlist builder: construction, folding, validation, forward refs."""

import pytest

from repro.errors import NetlistError
from repro.rtl.netlist import (
    GateKind,
    Netlist,
    check_unused,
    collect_fanout,
)


@pytest.fixture()
def nl():
    return Netlist("t")


class TestBuilders:
    def test_and_basic(self, nl):
        a, b = nl.input("a"), nl.input("b")
        out = nl.and_(a, b)
        assert isinstance(out.driver, object)
        assert out.driver.kind is GateKind.AND
        assert out.driver.inputs == (a, b)

    def test_and_dedupes_operands(self, nl):
        a, b = nl.input("a"), nl.input("b")
        out = nl.and_(a, b, a)
        assert out.driver.inputs == (a, b)

    def test_and_single_operand_passthrough(self, nl):
        a = nl.input("a")
        assert nl.and_(a) is a

    def test_and_identity_constant_dropped(self, nl):
        a = nl.input("a")
        assert nl.and_(a, nl.const(1)) is a

    def test_and_absorbing_constant(self, nl):
        a = nl.input("a")
        assert nl.is_const(nl.and_(a, nl.const(0))) == 0

    def test_or_identity_and_absorbing(self, nl):
        a = nl.input("a")
        assert nl.or_(a, nl.const(0)) is a
        assert nl.is_const(nl.or_(a, nl.const(1))) == 1

    def test_empty_and_is_const1(self, nl):
        assert nl.is_const(nl.and_()) == 1

    def test_empty_or_is_const0(self, nl):
        assert nl.is_const(nl.or_()) == 0

    def test_not_folds_constants(self, nl):
        assert nl.is_const(nl.not_(nl.const(0))) == 1
        assert nl.is_const(nl.not_(nl.const(1))) == 0

    def test_xor_folding(self, nl):
        a = nl.input("a")
        assert nl.xor(a, nl.const(0)) is a
        inverted = nl.xor(a, nl.const(1))
        assert inverted.driver.kind is GateKind.NOT
        assert nl.is_const(nl.xor(a, a)) == 0

    def test_mux_constant_select(self, nl):
        a, b = nl.input("a"), nl.input("b")
        assert nl.mux(nl.const(1), a, b) is a
        assert nl.mux(nl.const(0), a, b) is b

    def test_const_nets_shared(self, nl):
        assert nl.const(1) is nl.const(1)
        assert nl.const(0) is nl.const(0)
        assert nl.const(1) is not nl.const(0)

    def test_tree_builders(self, nl):
        bits = [nl.input(f"i{k}") for k in range(9)]
        out = nl.or_tree(bits)
        assert out.driver.kind is GateKind.OR
        with pytest.raises(NetlistError):
            nl.and_tree([])

    def test_unique_names(self, nl):
        first = nl.new_net("x")
        second = nl.new_net("x")
        assert first.name != second.name


class TestRegisters:
    def test_reg_and_delay(self, nl):
        a = nl.input("a")
        nl.reg(a, init=1)
        assert nl.registers[0].init == 1
        assert nl.delay(a, 0) is a
        chained = nl.delay(a, 3)
        assert nl.n_registers == 4
        assert chained is not a

    def test_delay_rejects_negative(self, nl):
        with pytest.raises(NetlistError):
            nl.delay(nl.input("a"), -1)

    def test_const1_enable_dropped(self, nl):
        a = nl.input("a")
        nl.reg(a, enable=nl.const(1))
        assert nl.registers[0].enable is None


class TestForwardReferences:
    def test_close_reg_feedback(self, nl):
        q = nl.placeholder("q")
        d = nl.or_(q, nl.input("set"))
        nl.close_reg(q, d)
        nl.output("q", q)
        nl.validate()

    def test_drive_or_single_becomes_buf(self, nl):
        p = nl.placeholder()
        nl.drive_or(p, [nl.input("a")])
        assert p.driver.kind is GateKind.BUF

    def test_double_drive_rejected(self, nl):
        p = nl.placeholder()
        nl.drive_const(p, 0)
        with pytest.raises(NetlistError):
            nl.drive_const(p, 1)

    def test_close_reg_on_driven_net_rejected(self, nl):
        a = nl.input("a")
        with pytest.raises(NetlistError):
            nl.close_reg(a, a)


class TestValidation:
    def test_undriven_gate_input(self, nl):
        dangling = nl.new_net("dangling")
        nl.output("o", nl.and_(dangling, nl.input("a")))
        with pytest.raises(NetlistError, match="undriven"):
            nl.validate()

    def test_undriven_output(self, nl):
        nl.output("o", nl.new_net("x"))
        with pytest.raises(NetlistError, match="undriven"):
            nl.validate()

    def test_duplicate_output_rejected(self, nl):
        a = nl.input("a")
        nl.output("o", a)
        with pytest.raises(NetlistError, match="duplicate"):
            nl.output("o", a)

    def test_combinational_loop_detected(self, nl):
        p = nl.placeholder("loop")
        out = nl.and_(p, nl.input("a"))
        nl.drive_gate(p, GateKind.BUF, (out,))
        with pytest.raises(NetlistError, match="loop"):
            nl.levelize()

    def test_register_breaks_cycle(self, nl):
        q = nl.placeholder("q")
        d = nl.not_(q)
        nl.close_reg(q, d)  # toggle flop: sequential loop is fine
        nl.output("q", q)
        nl.validate()


class TestStats:
    def test_gate_counts(self, nl):
        a, b = nl.input("a"), nl.input("b")
        nl.and_(a, b)
        nl.or_(a, b)
        nl.not_(a)
        counts = nl.gate_counts()
        assert counts == {"and": 1, "or": 1, "not": 1}

    def test_fanout_and_unused(self, nl):
        a = nl.input("a")
        used = nl.and_(a, nl.input("b"))
        nl.output("o", used)
        dead = nl.or_(a, a, name="dead")  # dedup -> buf? no: single -> a
        fanout = collect_fanout(nl)
        assert fanout[a.uid] >= 1
        unused = check_unused(nl)
        assert all(net.uid != used.uid for net in unused)
