"""Waveform capture helper."""

from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator
from repro.rtl.waveform import Waveform


def _pulse_design():
    nl = Netlist()
    a = nl.input("a")
    q = nl.reg(a, name="q")
    nl.output("q", q)
    return nl, q


def test_records_signals_and_outputs():
    nl, q = _pulse_design()
    wave = Waveform(Simulator(nl), watch=[q])
    wave.run([{"a": 1}, {"a": 0}, {"a": 1}])
    assert wave.signal("q") == [0, 1, 0]
    assert [o["q"] for o in wave.outputs] == [0, 1, 0]


def test_rising_edges():
    nl, q = _pulse_design()
    wave = Waveform(Simulator(nl), watch=[q])
    wave.run([{"a": v} for v in (1, 0, 0, 1, 0)])
    assert wave.rising_edges("q") == [1, 4]


def test_render_ascii():
    nl, q = _pulse_design()
    wave = Waveform(Simulator(nl), watch=[q])
    wave.run([{"a": 1}, {"a": 0}])
    art = wave.render()
    assert "q" in art
    assert "#" in art and "_" in art
