"""Bit-parallel simulator: agreement with the scalar simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.rtl.bitsim import (
    BitParallelSimulator,
    pack_byte_streams,
    unpack_output_lane,
)
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator


def _mixed_design():
    nl = Netlist()
    a, b, en = nl.input("a"), nl.input("b"), nl.input("en")
    q = nl.reg(nl.xor(a, b), enable=en, init=1, name="q")
    toggle = nl.placeholder("t")
    nl.close_reg(toggle, nl.not_(toggle))
    nl.output("q", q)
    nl.output("comb", nl.or_(nl.and_(a, q), nl.not_(b)))
    nl.output("t", toggle)
    return nl


class TestAgainstScalar:
    @given(
        frames=st.lists(
            st.tuples(st.booleans(), st.booleans(), st.booleans()),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_single_lane_matches_scalar(self, frames):
        nl = _mixed_design()
        scalar = Simulator(nl)
        parallel = BitParallelSimulator(_mixed_design(), lanes=1)
        for a, b, en in frames:
            expected = scalar.step({"a": a, "b": b, "en": en})
            got = parallel.step({"a": int(a), "b": int(b), "en": int(en)})
            assert got == {k: int(v) for k, v in expected.items()}

    def test_lanes_are_independent(self):
        parallel = BitParallelSimulator(_mixed_design(), lanes=2)
        # lane 0: a=1,b=0 ; lane 1: a=0,b=1, both enabled
        out = parallel.step({"a": 0b01, "b": 0b10, "en": 0b11})
        out = parallel.step({"a": 0, "b": 0, "en": 0})
        # q latched xor: lane0 1^0=1, lane1 0^1=1 -> 0b11
        assert out["q"] == 0b11

    def test_enable_per_lane(self):
        parallel = BitParallelSimulator(_mixed_design(), lanes=2)
        parallel.step({"a": 0b11, "b": 0b00, "en": 0b01})  # only lane 0 loads
        out = parallel.step({"a": 0, "b": 0, "en": 0})
        assert out["q"] & 0b01 == 0b01  # lane 0 loaded 1
        assert out["q"] & 0b10 == 0b10  # lane 1 held init 1

    def test_unknown_port(self):
        parallel = BitParallelSimulator(_mixed_design(), lanes=1)
        with pytest.raises(SimulationError):
            parallel.step({"zzz": 1})

    def test_lane_count_validated(self):
        with pytest.raises(SimulationError):
            BitParallelSimulator(_mixed_design(), lanes=0)


class TestTaggerCorpus:
    def test_tagger_runs_many_inputs_at_once(self, ite_grammar):
        """The intended use: one pass checks a whole input corpus."""
        from repro.core.generator import TaggerGenerator
        from repro.core.tagger import BehavioralTagger

        circuit = TaggerGenerator().generate(ite_grammar)
        behavioral = BehavioralTagger(ite_grammar)
        corpus = [
            b"if true then go else stop",
            b"go",
            b"stop go stop",
            b"iffy",
            b"if false then stop else go",
        ]
        latency = circuit.detect_latency
        frames = pack_byte_streams(corpus, flush=latency + 2)
        parallel = BitParallelSimulator(circuit.netlist, lanes=len(corpus))
        outputs = parallel.run(frames)

        for lane, data in enumerate(corpus):
            expected = {
                (str(e.occurrence), e.end) for e in behavioral.events(data)
            }
            got = set()
            for occurrence, port in circuit.detect_ports.items():
                trace = unpack_output_lane(outputs, port, lane)
                for cycle, value in enumerate(trace):
                    end = cycle - latency + 1
                    if value and 1 <= end <= len(data):
                        got.add((str(occurrence), end))
            assert got == expected, corpus[lane]

    def test_pack_respects_lengths(self):
        frames = pack_byte_streams([b"ab", b"a"], flush=1)
        assert frames[0]["in_valid"] == 0b11
        assert frames[1]["in_valid"] == 0b01
        assert frames[2]["in_valid"] == 0
