"""VHDL emission: structure, identifiers, golden fragment."""

import re

from repro.rtl.netlist import Netlist
from repro.rtl.vhdl import emit_vhdl, _sanitize


def _small_design():
    nl = Netlist("demo")
    a, b = nl.input("a"), nl.input("b")
    q = nl.reg(nl.and_(a, b, name="prod"), name="q")
    gated = nl.reg(a, enable=b, init=1, name="held")
    nl.output("q", q)
    nl.output("held", gated)
    return nl


class TestSanitize:
    def test_strips_illegal_characters(self):
        assert _sanitize("tok_<i4>_p13.0") == "tok_i4_p13_0"

    def test_prefixes_non_alpha_start(self):
        assert _sanitize("0weird")[0].isalpha()

    def test_never_empty(self):
        assert _sanitize("!!!")


class TestEmission:
    def test_entity_architecture_present(self):
        text = emit_vhdl(_small_design())
        assert "entity demo is" in text
        assert "architecture rtl of demo" in text
        assert "end architecture rtl;" in text

    def test_ports_declared(self):
        text = emit_vhdl(_small_design())
        assert "clk   : in  std_logic" in text
        assert re.search(r"\ba : in  std_logic", text)
        assert re.search(r"o_q : out std_logic", text)

    def test_gates_become_concurrent_assignments(self):
        text = emit_vhdl(_small_design())
        assert re.search(r"prod\w* <= a and b;", text)

    def test_registers_in_clocked_process(self):
        text = emit_vhdl(_small_design())
        assert "rising_edge(clk)" in text
        assert "if reset = '1' then" in text
        # enable register guards its load
        assert re.search(r"if b = '1' then", text)
        # init value 1 appears in the reset branch
        assert re.search(r"held\w* <= '1';", text)

    def test_custom_entity_name(self):
        text = emit_vhdl(_small_design(), entity="my top!")
        assert "entity my_top is" in text

    def test_name_collisions_resolved(self):
        nl = Netlist("x")
        a = nl.input("sig.1")
        b = nl.input("sig 1")
        nl.output("o", nl.and_(a, b))
        text = emit_vhdl(nl)
        # both inputs must appear with distinct identifiers
        ports = re.findall(r"(\w+) : in  std_logic", text)
        assert len(ports) == len(set(ports))

    def test_generated_tagger_emits(self):
        from repro.core.generator import TaggerGenerator
        from repro.grammar.examples import if_then_else

        circuit = TaggerGenerator().generate(if_then_else())
        text = emit_vhdl(circuit.netlist)
        assert text.count("<=") > 100
        assert "registers : process (clk)" in text
