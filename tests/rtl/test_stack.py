"""Hardware stack module (§5.2 substrate)."""

import pytest

from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator
from repro.rtl.stack import build_counter_stack, build_stack


def _rig(width=2, depth=4):
    nl = Netlist("stk")
    push, pop = nl.input("push"), nl.input("pop")
    data = [nl.input(f"d{b}") for b in range(width)]
    ports = build_stack(nl, push, pop, data, depth=depth)
    for b, net in enumerate(ports.top):
        nl.output(f"top{b}", net)
    nl.output("empty", ports.empty)
    nl.output("ovf", ports.overflow)
    nl.output("unf", ports.underflow)
    nl.validate()
    return Simulator(nl), width


def _op(sim, width, push=0, pop=0, value=0):
    frame = {"push": push, "pop": pop}
    for b in range(width):
        frame[f"d{b}"] = (value >> b) & 1
    return sim.step(frame)


def _top(out, width):
    return sum(out[f"top{b}"] << b for b in range(width))


class TestStack:
    def test_starts_empty(self):
        sim, w = _rig()
        out = _op(sim, w)
        assert out["empty"] == 1

    def test_push_pop_lifo(self):
        sim, w = _rig()
        _op(sim, w, push=1, value=2)
        _op(sim, w, push=1, value=3)
        out = _op(sim, w)
        assert _top(out, w) == 3 and out["empty"] == 0
        out = _op(sim, w, pop=1)
        assert _top(out, w) == 3  # pop takes effect at the edge
        out = _op(sim, w)
        assert _top(out, w) == 2
        _op(sim, w, pop=1)
        out = _op(sim, w)
        assert out["empty"] == 1

    def test_replace_top(self):
        sim, w = _rig()
        _op(sim, w, push=1, value=1)
        _op(sim, w, push=1, pop=1, value=3)  # replace
        out = _op(sim, w)
        assert _top(out, w) == 3
        _op(sim, w, pop=1)
        out = _op(sim, w)
        assert out["empty"] == 1  # depth stayed 1

    def test_overflow_sticky(self):
        sim, w = _rig(depth=2)
        for v in (1, 2, 3):
            _op(sim, w, push=1, value=v)
        out = _op(sim, w)
        assert out["ovf"] == 1
        out = _op(sim, w, pop=1)
        assert out["ovf"] == 1  # sticky

    def test_underflow_sticky(self):
        sim, w = _rig()
        _op(sim, w, pop=1)
        out = _op(sim, w)
        assert out["unf"] == 1

    def test_deep_sequence(self):
        sim, w = _rig(width=3, depth=6)
        values = [1, 5, 2, 7]
        for v in values:
            _op(sim, w, push=1, value=v)
        for expected in reversed(values):
            out = _op(sim, w)
            assert _top(out, w if w else 3) or True
            assert sum(out[f"top{b}"] << b for b in range(3)) == expected
            _op(sim, w, pop=1)
        out = _op(sim, w)
        assert out["empty"] == 1
        assert out["ovf"] == 0 and out["unf"] == 0

    def test_bad_depth(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            build_stack(nl, nl.input("p"), nl.input("q"), [], depth=0)


class TestCounterStack:
    def test_counts_depth(self):
        nl = Netlist()
        push, pop = nl.input("push"), nl.input("pop")
        ports = build_counter_stack(nl, push, pop, depth=3)
        nl.output("empty", ports.empty)
        nl.output("unf", ports.underflow)
        sim = Simulator(nl)
        sim.step({"push": 1, "pop": 0})
        sim.step({"push": 1, "pop": 0})
        out = sim.step({"push": 0, "pop": 0})
        assert out["empty"] == 0
        sim.step({"push": 0, "pop": 1})
        sim.step({"push": 0, "pop": 1})
        out = sim.step({"push": 0, "pop": 0})
        assert out["empty"] == 1 and out["unf"] == 0
        sim.step({"push": 0, "pop": 1})
        assert sim.step({"push": 0, "pop": 0})["unf"] == 1
