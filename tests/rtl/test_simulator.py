"""Cycle-accurate simulator semantics."""

import pytest

from repro.errors import SimulationError
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import (
    Simulator,
    byte_stimulus,
    stimulus_with_valid,
    trace_nets,
)


def _toggle_netlist():
    nl = Netlist()
    q = nl.placeholder("q")
    nl.close_reg(q, nl.not_(q))
    nl.output("q", q)
    return nl


class TestCombinational:
    def test_gate_evaluation(self):
        nl = Netlist()
        a, b = nl.input("a"), nl.input("b")
        nl.output("and", nl.and_(a, b))
        nl.output("or", nl.or_(a, b))
        nl.output("xor", nl.xor(a, b))
        nl.output("not", nl.not_(a))
        sim = Simulator(nl)
        for va in (0, 1):
            for vb in (0, 1):
                out = sim.step({"a": va, "b": vb})
                assert out["and"] == (va & vb)
                assert out["or"] == (va | vb)
                assert out["xor"] == (va ^ vb)
                assert out["not"] == (1 - va)

    def test_constants(self):
        nl = Netlist()
        nl.output("one", nl.const(1))
        nl.output("zero", nl.const(0))
        sim = Simulator(nl)
        assert sim.step() == {"one": 1, "zero": 0}

    def test_unknown_input_rejected(self):
        nl = Netlist()
        nl.output("o", nl.input("a"))
        sim = Simulator(nl)
        with pytest.raises(SimulationError, match="unknown input"):
            sim.step({"nope": 1})


class TestSequential:
    def test_register_delays_one_cycle(self):
        nl = Netlist()
        a = nl.input("a")
        nl.output("q", nl.reg(a))
        sim = Simulator(nl)
        assert sim.step({"a": 1})["q"] == 0
        assert sim.step({"a": 0})["q"] == 1
        assert sim.step({"a": 0})["q"] == 0

    def test_init_value(self):
        nl = Netlist()
        nl.output("q", nl.reg(nl.input("a"), init=1))
        sim = Simulator(nl)
        assert sim.step({"a": 0})["q"] == 1

    def test_enable_stalls(self):
        nl = Netlist()
        a, en = nl.input("a"), nl.input("en")
        nl.output("q", nl.reg(a, enable=en))
        sim = Simulator(nl)
        sim.step({"a": 1, "en": 1})
        assert sim.step({"a": 0, "en": 0})["q"] == 1  # latched
        assert sim.step({"a": 0, "en": 0})["q"] == 1  # held
        sim.step({"a": 0, "en": 1})
        assert sim.step({"a": 0, "en": 0})["q"] == 0  # loaded 0

    def test_toggle_flop(self):
        sim = Simulator(_toggle_netlist())
        values = [sim.step()["q"] for _ in range(6)]
        assert values == [0, 1, 0, 1, 0, 1]

    def test_shift_register_simultaneous_update(self):
        # All registers must sample before any updates (two-phase).
        nl = Netlist()
        a = nl.input("a")
        q1 = nl.reg(a, name="q1")
        q2 = nl.reg(q1, name="q2")
        nl.output("q2", q2)
        sim = Simulator(nl)
        sim.step({"a": 1})
        assert sim.step({"a": 0})["q2"] == 0
        assert sim.step({"a": 0})["q2"] == 1

    def test_reset_restores_init(self):
        sim = Simulator(_toggle_netlist())
        sim.step()
        sim.step()
        sim.reset()
        assert sim.cycle == 0
        assert sim.step()["q"] == 0

    def test_peek_by_name_and_net(self):
        nl = Netlist()
        a = nl.input("a")
        q = nl.reg(a, name="myreg")
        nl.output("q", q)
        sim = Simulator(nl)
        sim.step({"a": 1})
        assert sim.peek(q) == 1
        assert sim.peek("myreg") == 1
        with pytest.raises(SimulationError):
            sim.peek("missing")


class TestStimulusHelpers:
    def test_byte_stimulus_lsb_first(self):
        frames = byte_stimulus(b"\x81")
        assert frames[0]["data0"] == 1
        assert frames[0]["data7"] == 1
        assert frames[0]["data1"] == 0

    def test_stimulus_with_valid_flushes(self):
        frames = stimulus_with_valid(b"ab", 3)
        assert len(frames) == 5
        assert frames[0]["in_valid"] == 1
        assert frames[-1]["in_valid"] == 0

    def test_trace_nets(self):
        nl = Netlist()
        a = nl.input("a")
        q = nl.reg(a, name="q")
        nl.output("q", q)
        sim = Simulator(nl)
        traces = trace_nets(sim, [{"a": 1}, {"a": 0}], [q])
        assert traces["q"] == [0, 1]

    def test_run_collects_outputs(self):
        nl = Netlist()
        a = nl.input("a")
        nl.output("o", a)
        sim = Simulator(nl)
        outs = sim.run([{"a": 1}, {"a": 0}, {"a": 1}])
        assert [o["o"] for o in outs] == [1, 0, 1]
