"""VHDL testbench emitter and VCD waveform export."""

import io
import re

import pytest

from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator
from repro.rtl.testbench import emit_testbench
from repro.rtl.vcd import VCDWriter, dump_vcd


def _toy():
    nl = Netlist("toy")
    a, b = nl.input("a"), nl.input("b")
    nl.output("q", nl.reg(nl.and_(a, b), name="q"))
    return nl


class TestTestbench:
    def test_structure(self):
        stimulus = [{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 0}]
        text = emit_testbench(_toy(), stimulus)
        assert "entity tb_toy is" in text
        assert "dut : entity work.toy" in text
        assert text.count("wait until rising_edge(clk);") == len(stimulus) + 1

    def test_expected_values_from_simulation(self):
        stimulus = [{"a": 1, "b": 1}, {"a": 0, "b": 0}]
        text = emit_testbench(_toy(), stimulus)
        # cycle 0: q still 0 (registered); cycle 1: q = 1
        assert re.search(r'assert o_q = \'0\' report "cycle 0', text)
        assert re.search(r'assert o_q = \'1\' report "cycle 1', text)

    def test_output_subset(self):
        text = emit_testbench(_toy(), [{"a": 1, "b": 1}], check_outputs=["q"])
        assert "o_q" in text
        with pytest.raises(KeyError):
            emit_testbench(_toy(), [], check_outputs=["missing"])

    def test_tagger_testbench_emits(self, ite_grammar):
        from repro.core.generator import TaggerGenerator
        from repro.rtl.simulator import stimulus_with_valid

        circuit = TaggerGenerator().generate(ite_grammar)
        stimulus = stimulus_with_valid(b"go", 12)
        text = emit_testbench(circuit.netlist, stimulus)
        assert "assert" in text and "in_valid" in text


class TestVCD:
    def test_header_and_changes(self):
        nl = _toy()
        sink = io.StringIO()
        nets = [nl.inputs[0], nl.outputs["q"]]
        writer = VCDWriter(Simulator(nl), sink, watch=nets)
        writer.run([{"a": 1, "b": 1}, {"a": 1, "b": 1}, {"a": 0, "b": 0}])
        text = sink.getvalue()
        assert "$timescale 1 ns $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        # 'a' rises at t=0, q rises at t=10, both fall by t=20/30.
        assert re.search(r"#0\n1!", text)

    def test_only_changes_recorded(self):
        nl = _toy()
        sink = io.StringIO()
        writer = VCDWriter(Simulator(nl), sink, watch=[nl.inputs[0]])
        writer.run([{"a": 1, "b": 0}] * 5)
        # one change at t=0, then silence
        assert sink.getvalue().count("1!") == 1

    def test_dump_vcd_to_file(self, tmp_path):
        path = tmp_path / "wave.vcd"
        dump_vcd(_toy(), [{"a": 1, "b": 1}, {"a": 0, "b": 0}], str(path))
        content = path.read_text()
        assert "$enddefinitions" in content
        assert content.strip().splitlines()[-1].startswith("#")

    def test_tagger_waveform(self, tmp_path, ite_grammar):
        from repro.core.generator import TaggerGenerator
        from repro.rtl.simulator import stimulus_with_valid

        circuit = TaggerGenerator().generate(ite_grammar)
        path = tmp_path / "tagger.vcd"
        detect_nets = [
            circuit.netlist.outputs[port]
            for port in list(circuit.detect_ports.values())[:3]
        ]
        dump_vcd(
            circuit.netlist,
            stimulus_with_valid(b"go stop", 12),
            str(path),
            watch=detect_nets,
        )
        assert path.stat().st_size > 100
