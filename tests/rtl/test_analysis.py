"""Structural analysis: logic levels, fanout, pipeline depth."""

import pytest

from repro.rtl.netlist import Netlist
from repro.rtl.analysis import (
    analyze,
    fanout_map,
    logic_levels,
    max_logic_depth,
    pipeline_depth,
)


def test_logic_levels_chain():
    nl = Netlist()
    a, b, c = (nl.input(x) for x in "abc")
    l1 = nl.and_(a, b)
    l2 = nl.or_(l1, c)
    l3 = nl.not_(l2)
    levels = logic_levels(nl)
    assert levels[a.uid] == 0
    assert levels[l1.uid] == 1
    assert levels[l2.uid] == 2
    assert levels[l3.uid] == 3


def test_max_depth_measured_at_register_boundaries():
    nl = Netlist()
    a, b = nl.input("a"), nl.input("b")
    deep = nl.not_(nl.or_(nl.and_(a, b), b))
    q = nl.reg(deep)
    nl.output("o", nl.and_(q, a))  # depth 1 after the register
    assert max_logic_depth(nl) == 3


def test_register_resets_depth():
    nl = Netlist()
    a = nl.input("a")
    nl.and_(a, a, name="s")  # dedup -> passthrough a
    q = nl.reg(nl.not_(a))
    out = nl.and_(q, a)
    nl.output("o", out)
    levels = logic_levels(nl)
    assert levels[q.uid] == 0
    assert levels[out.uid] == 1


def test_fanout_map_counts_all_sinks():
    nl = Netlist()
    a = nl.input("a")
    nl.output("o1", nl.and_(a, nl.input("b")))
    nl.reg(a)
    nl.output("o2", a)
    fanout = fanout_map(nl)
    # a feeds: the AND gate, the register D, and output o2.
    assert fanout[a.uid] == 3


class TestPipelineDepth:
    def test_straight_pipeline(self):
        nl = Netlist()
        a = nl.input("a")
        q = nl.delay(a, 4)
        nl.output("o", q)
        assert pipeline_depth(nl, "o") == 4

    def test_combinational_only(self):
        nl = Netlist()
        nl.output("o", nl.not_(nl.input("a")))
        assert pipeline_depth(nl, "o") == 0

    def test_takes_longest_branch(self):
        nl = Netlist()
        a = nl.input("a")
        short = nl.reg(a)
        long = nl.delay(a, 3)
        nl.output("o", nl.or_(short, long))
        assert pipeline_depth(nl, "o") == 3

    def test_sequential_feedback_does_not_hang(self):
        nl = Netlist()
        q = nl.placeholder("q")
        nl.close_reg(q, nl.or_(q, nl.input("s")))
        nl.output("o", q)
        assert pipeline_depth(nl, "o") == 1

    def test_unknown_output_rejected(self):
        nl = Netlist()
        nl.output("o", nl.input("a"))
        with pytest.raises(KeyError):
            pipeline_depth(nl, "nope")


def test_analyze_summary():
    nl = Netlist("demo")
    a = nl.input("a")
    b = nl.input("b")
    nl.output("o", nl.and_(a, b, name="theand"))
    stats = analyze(nl)
    assert stats.n_gates == 1
    assert stats.max_logic_depth == 1
    assert stats.max_fanout >= 1
    assert "demo" in stats.summary()
