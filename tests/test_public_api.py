"""Public API surface and docstring examples."""

import doctest
import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_aliases(self):
        assert repro.grammar_from_yacc is repro.parse_yacc_grammar
        assert repro.grammar_from_dtd is repro.dtd_to_grammar

    def test_quickstart_flow(self):
        """The README quickstart, verbatim."""
        g = repro.grammar_from_yacc(
            """
            %%
            E: "if" C "then" E "else" E | "go" | "stop";
            C: "true" | "false";
            """
        )
        tagger = repro.BehavioralTagger(g)
        tokens = [t.token for t in tagger.tag(b"if true then go else stop")]
        assert tokens == ["if", "true", "then", "go", "else", "stop"]


_DOCTEST_MODULES = [
    "repro",
    "repro.rtl.netlist",
    "repro.rtl.simulator",
    "repro.grammar.regex.parser",
    "repro.grammar.regex.nfa",
    "repro.grammar.regex.dfa",
    "repro.grammar.dtd",
    "repro.grammar.yacc_parser",
    "repro.core.generator",
    "repro.core.backend",
    "repro.software.lexer",
    "repro.software.ll1",
    "repro.software.recursive_descent",
    "repro.software.naive",
    "repro.apps.xmlrpc.router",
    "repro.apps.netstack.wrapper",
    "repro.service.service",
    "repro.bench.scaling",
]


@pytest.mark.parametrize("module_name", _DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    failures, _tests = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    ).failed, None
    assert failures == 0, f"doctest failures in {module_name}"
