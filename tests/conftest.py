"""Shared fixtures: the paper's grammars and canonical messages."""

from __future__ import annotations

import pytest

from repro.apps.xmlrpc import WorkloadGenerator
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc


@pytest.fixture(scope="session")
def ite_grammar():
    """Fig. 9: the if-then-else grammar."""
    return if_then_else()


@pytest.fixture(scope="session")
def parens_grammar():
    """Fig. 1: balanced parentheses."""
    return balanced_parens()


@pytest.fixture(scope="session")
def xmlrpc_grammar():
    """Fig. 14: the XML-RPC grammar."""
    return xmlrpc()


@pytest.fixture(scope="session")
def xmlrpc_message() -> bytes:
    """A fixed, fully featured, valid XML-RPC message."""
    return (
        b"<methodCall><methodName>deposit</methodName><params>"
        b"<param><i4>42</i4></param>"
        b"<param><string>savings</string></param>"
        b"<param><dateTime.iso8601>20060704T12:30:05</dateTime.iso8601></param>"
        b"<param><double>-3.50</double></param>"
        b"<param><base64>dGVzdA+/</base64></param>"
        b"<param><struct><member><name>k</name><int>7</int></member></struct></param>"
        b"<param><array><data><string>x1</string></data></array></param>"
        b"</params></methodCall>"
    )


@pytest.fixture(scope="session")
def xmlrpc_stream() -> bytes:
    """A seeded multi-message stream (valid, no decoys)."""
    generator = WorkloadGenerator(seed=1234)
    stream, _truth = generator.stream(8)
    return stream
