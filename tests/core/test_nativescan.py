"""Native C engine ≡ vector engine ≡ compiled engine ≡ interpreted loop.

The native engine (:mod:`repro.core.nativescan`) replaces the wide
Python loop with one C call per chunk — flat step tables, an effect
bytecode interpreter, dead-region fast-forwarding, C-side event
materialization — none of which may be observable: same events, same
order, same earliest-start lexemes, same §5.2 error positions, same
results under any chunking.  This suite pins all of that 4-way
differentially (interpreted vs compiled vs vector vs native) on seeded
random byte soup and XML-RPC workloads, across the full wiring-corner
matrix.

When the kernel cannot be built (no compiler, ``REPRO_DISABLE_NATIVE``)
the differential tests still run — they then prove the fallback ladder
— while the native-only assertions skip gracefully.
"""

import pickle
import random
import zlib
from dataclasses import replace

import pytest

from repro.apps.xmlrpc.workload import WorkloadGenerator
from repro.core.compiled import CompiledTagger
from repro.core.generator import TaggerOptions
from repro.core.nativescan import NativeTagger, capability
from repro.core.tagger import BehavioralTagger
from repro.core.vectorscan import BatchScanner, VectorTagger
from repro.core.wiring import WiringOptions
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc

GRAMMARS = {
    "ite": if_then_else,
    "xmlrpc": xmlrpc,
    "parens": balanced_parens,
}

#: Wiring corners the table lowering must specialize on, matching the
#: compiled and vector engines' differential matrices.
VARIANTS = {
    "default": WiringOptions(),
    "no-dup": WiringOptions(context_duplication=False),
    "always": WiringOptions(start_mode="always"),
    "recovery": WiringOptions(error_recovery=True),
}
VARIANTS["no-longest"] = replace(
    WiringOptions(),
    tokenizer=replace(WiringOptions().tokenizer, longest_match=False),
)

ALPHABET = b"if then else got() <methodCall>param</int>intx 0123abc\t\n "

#: One probe per session: attempts the just-in-time kernel build, so
#: every later construction is a cache hit (or an honest skip).
NATIVE_BUILT = capability(probe=True)["native"]

needs_native = pytest.mark.skipif(
    not NATIVE_BUILT,
    reason="native kernel unavailable (no compiler or disabled)",
)


def _random_streams(seed: int, count: int, max_len: int = 200):
    rng = random.Random(seed)
    for _ in range(count):
        n = rng.randrange(0, max_len)
        yield bytes(rng.choice(ALPHABET) for _ in range(n))


def _random_chunks(data: bytes, rng: random.Random):
    """Adversarial split boundaries: single bytes, odd runs, MTU runs."""
    i = 0
    while i < len(data):
        n = rng.choice((1, 3, 5, 7, 8, 9, 13, 64, 211, 1500))
        yield data[i : i + n]
        i += n


# ----------------------------------------------------------------------
# differential: full wiring matrix and 4-way agreement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("gname", GRAMMARS)
@pytest.mark.parametrize("vname", VARIANTS)
def test_differential_random_streams(gname, vname):
    """scan() (events AND earliest starts) matches the compiled engine
    on every grammar × wiring corner."""
    grammar = GRAMMARS[gname]()
    options = TaggerOptions(wiring=VARIANTS[vname])
    compiled = CompiledTagger(grammar, options)
    native = NativeTagger(grammar, options)
    seed = zlib.crc32(f"native/{gname}/{vname}".encode())
    for data in _random_streams(seed=seed, count=40):
        assert native.scan(data) == compiled.scan(data)


@pytest.mark.parametrize("gname", GRAMMARS)
def test_four_way_agreement(gname):
    """All four engines agree — the native loop against the vector and
    compiled tables AND the interpreted reference semantics."""
    grammar = GRAMMARS[gname]()
    interpreted = BehavioralTagger(grammar, engine="interpreted")
    compiled = CompiledTagger(grammar)
    vector = VectorTagger(grammar)
    native = NativeTagger(grammar)
    seed = zlib.crc32(f"native4/{gname}".encode())
    for data in _random_streams(seed=seed, count=12):
        expected = compiled.scan(data)
        assert native.scan(data) == expected
        assert vector.scan(data) == expected
        assert expected == list(interpreted._scan(data, error_sink=None))


@needs_native
def test_native_path_is_live_on_xmlrpc():
    """The reference grammar densifies: these tests must exercise the C
    loop, not silently fall back down the ladder."""
    assert NativeTagger(xmlrpc()).native_active


def test_xmlrpc_workload_events_and_tags():
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    native = NativeTagger(grammar)
    data, _ = WorkloadGenerator(seed=41).stream(60)
    # events() takes the kernel's events-only fast path; scan()/tag()
    # carry the (event, match start) pairs. All must agree exactly.
    assert native.events(data) == compiled.events(data)
    assert native.scan(data) == compiled.scan(data)
    assert native.tag(data) == compiled.tag(data)


# ----------------------------------------------------------------------
# streaming: chunking invariance and cross-chunk state
# ----------------------------------------------------------------------
@pytest.mark.parametrize("trial", range(4))
def test_stream_chunking_invariance(trial):
    """Any split of the stream — mid-token, single bytes, MTU runs —
    yields the one-shot result, matching the compiled session exactly
    chunk by chunk."""
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    native = NativeTagger(grammar)
    data, _ = WorkloadGenerator(seed=300 + trial).stream(25)
    one_shot = compiled.events(data)
    rng = random.Random(trial)
    cs, ns = compiled.stream(), native.stream()
    collected = []
    for chunk in _random_chunks(data, rng):
        got = ns.feed(chunk)
        assert got == cs.feed(chunk)
        collected += got
    collected += ns.finish()
    assert collected == one_shot


def test_odd_length_inputs():
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    native = NativeTagger(grammar)
    data, _ = WorkloadGenerator(seed=5).stream(10)
    for n in (0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 257):
        assert native.scan(data[:n]) == compiled.scan(data[:n])


# ----------------------------------------------------------------------
# error recovery and dead-region skipping
# ----------------------------------------------------------------------
def test_error_recovery_positions():
    grammar = xmlrpc()
    options = TaggerOptions(wiring=WiringOptions(error_recovery=True))
    compiled = CompiledTagger(grammar, options)
    native = NativeTagger(grammar, options)
    data, _ = WorkloadGenerator(seed=3).stream(5)
    corrupted = data[:300] + b"\xff\xfe<<>>broken" + data[300:]
    assert native.events_and_errors(corrupted) == compiled.events_and_errors(
        corrupted
    )


def test_error_positions_across_chunk_boundaries():
    """§5.2 error positions accumulate identically when the corruption
    spans feed() boundaries."""
    grammar = xmlrpc()
    options = TaggerOptions(wiring=WiringOptions(error_recovery=True))
    compiled = CompiledTagger(grammar, options)
    native = NativeTagger(grammar, options)
    data, _ = WorkloadGenerator(seed=13).stream(8)
    corrupted = data[:500] + b"\x00\x00garbage\xff" + data[500:]
    rng = random.Random(99)
    cs, ns = compiled.stream(), native.stream()
    for chunk in _random_chunks(corrupted, rng):
        assert ns.feed(chunk) == cs.feed(chunk)
    assert ns.finish() == cs.finish()
    assert ns.errors == cs.errors


@needs_native
def test_dead_region_is_skipped_and_exact():
    """Without recovery an unrecoverable error parks the machine in a
    dead state; the C fast-forward must skip through it while producing
    byte-identical output."""
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    native = NativeTagger(grammar)
    data, _ = WorkloadGenerator(seed=3).stream(4)
    poisoned = data + b"\x00\x01 dead region " * 4000 + data
    assert native.events(poisoned) == compiled.events(poisoned)
    assert native.native_active
    assert native.bytes_skipped > 0
    assert native.bytes_skipped < native.bytes_scanned


# ----------------------------------------------------------------------
# batch scanner integration
# ----------------------------------------------------------------------
@needs_native
def test_batch_scanner_prefers_per_flow_native():
    """With the C loop live the per-flow path beats NumPy lockstep, so
    BatchScanner must route flows through it (never lockstep) while
    staying bit-exact with per-flow compiled feeding."""
    grammar = xmlrpc()
    native = NativeTagger(grammar)
    compiled = CompiledTagger(grammar)
    scanner = BatchScanner(native, min_flows=2)
    data, _ = WorkloadGenerator(seed=21).stream(10)
    sessions = [scanner.session() for _ in range(6)]
    outs = scanner.feed_many(sessions, [data] * 6)
    assert scanner.batched == 0 and scanner.fallback == 6
    expected = compiled.events(data)
    for out, session in zip(outs, sessions):
        assert out + session.finish() == expected


# ----------------------------------------------------------------------
# fallback ladder, construction, pickling
# ----------------------------------------------------------------------
def test_fallback_without_kernel_is_exact():
    """With the kernel gone the engine must degrade to the vector (or
    compiled) loop transparently."""
    grammar = xmlrpc()
    native = NativeTagger(grammar)
    native._nt = None
    assert not native.native_active
    compiled = CompiledTagger(grammar)
    data, _ = WorkloadGenerator(seed=8).stream(15)
    assert native.scan(data) == compiled.scan(data)
    assert native.events(data) == compiled.events(data)


def test_disable_env_kills_kernel(monkeypatch):
    """REPRO_DISABLE_NATIVE=1 must gate construction at every layer —
    fresh taggers fall down the ladder and capability says why."""
    monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
    flags = capability(probe=True)
    assert flags["native"] is False
    assert flags["disabled_by_env"] is True
    native = NativeTagger(xmlrpc())
    assert not native.native_active
    compiled = CompiledTagger(xmlrpc())
    data, _ = WorkloadGenerator(seed=6).stream(5)
    assert native.scan(data) == compiled.scan(data)


def test_behavioral_tagger_engine_selection():
    tagger = BehavioralTagger(xmlrpc(), engine="native")
    assert isinstance(tagger.compiled, NativeTagger)
    data, _ = WorkloadGenerator(seed=2).stream(5)
    reference = BehavioralTagger(xmlrpc(), engine="compiled")
    assert tagger.tag(data) == reference.tag(data)
    with pytest.raises(ValueError):
        BehavioralTagger(xmlrpc(), engine="nativ")


def test_pickle_roundtrip_preserves_engine():
    native = NativeTagger(xmlrpc())
    clone = pickle.loads(pickle.dumps(native))
    assert type(clone) is NativeTagger
    data, _ = WorkloadGenerator(seed=4).stream(5)
    assert clone.events(data) == native.events(data)


def test_service_specs_accept_native():
    from repro.service.errors import ServiceError
    from repro.service.service import TaggerSpec, _engine_tagger

    tagger = _engine_tagger(xmlrpc(), None, "native")
    assert isinstance(tagger, NativeTagger)
    backend = TaggerSpec(grammar=xmlrpc(), engine="native").build()
    assert isinstance(backend.tagger, NativeTagger)
    with pytest.raises(ServiceError):
        _engine_tagger(xmlrpc(), None, "interpreted")


def test_capability_shape():
    flags = capability()
    assert set(flags) == {"native", "disabled_by_env", "compiler", "source"}
    assert flags["source"] in (None, "jit", "prebuilt")
