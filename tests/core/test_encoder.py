"""Token index encoders: equations 1–4 (OR tree), equation 5
(priority masks), and the CASE-chain ablation."""

import pytest

from repro.core.encoder import (
    assign_nested_indices,
    build_case_encoder,
    build_mask_encoder,
    build_or_tree_encoder,
)
from repro.errors import EncoderError
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator


def _encoder_rig(n_inputs: int, builder, **kwargs):
    nl = Netlist("enc")
    inputs = [nl.input(f"d{k}") for k in range(n_inputs)]
    result = builder(nl, inputs, **kwargs)
    for bit, net in enumerate(result.index_bits):
        nl.output(f"i{bit}", net)
    nl.output("v", result.valid)
    nl.validate()
    return nl, result


def _read_index(sim, result, pulse_inputs, n_inputs):
    """Pulse the given inputs for one cycle; read (index, valid)."""
    frame = {f"d{k}": (1 if k in pulse_inputs else 0) for k in range(n_inputs)}
    sim.step(frame)
    zero = {f"d{k}": 0 for k in range(n_inputs)}
    out = None
    for _ in range(result.latency):
        out = sim.step(zero)
    index = sum(out[f"i{b}"] << b for b in range(result.width))
    return index, out["v"]


class TestOrTreeEncoder:
    def test_fifteen_input_equations(self):
        """The paper's 15-input example: input k encodes as index k."""
        nl, result = _encoder_rig(15, build_or_tree_encoder)
        assert result.width == 4
        assert result.latency == 4
        sim = Simulator(nl)
        for k in range(15):
            sim.reset()
            index, valid = _read_index(sim, result, {k}, 15)
            assert (index, valid) == (k + 1, 1), k

    def test_no_input_no_valid(self):
        nl, result = _encoder_rig(15, build_or_tree_encoder)
        sim = Simulator(nl)
        index, valid = _read_index(sim, result, set(), 15)
        assert valid == 0

    def test_simultaneous_inputs_or_their_indices(self):
        """Hardware behaviour the equation-5 scheme builds on."""
        nl, result = _encoder_rig(15, build_or_tree_encoder)
        sim = Simulator(nl)
        index, valid = _read_index(sim, result, {0, 2}, 15)  # 1 | 3
        assert valid == 1
        assert index == (1 | 3)

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 33])
    def test_arbitrary_sizes(self, n):
        nl, result = _encoder_rig(n, build_or_tree_encoder)
        sim = Simulator(nl)
        for k in (0, n // 2, n - 1):
            sim.reset()
            index, valid = _read_index(sim, result, {k}, n)
            assert (index, valid) == (k + 1, 1)

    def test_pipelined_one_gate_per_level(self):
        """'the longest chain of gates in the index encoder becomes the
        critical path' — ours keeps one gate level between registers."""
        from repro.rtl.analysis import max_logic_depth

        nl, _ = _encoder_rig(32, build_or_tree_encoder)
        assert max_logic_depth(nl) <= 1

    def test_empty_inputs_rejected(self):
        nl = Netlist()
        with pytest.raises(EncoderError):
            build_or_tree_encoder(nl, [])


class TestNestedIndices:
    def test_nested_chain_property(self):
        """Equation 5: OR of the group's indices = highest priority."""
        indices = assign_nested_indices(6, [[0, 1, 2]])
        group = [indices[0], indices[1], indices[2]]
        assert group[0] | group[1] | group[2] == group[2]
        assert group[0] | group[1] == group[1]
        assert len(set(indices)) == 6
        assert 0 not in indices

    def test_multiple_groups(self):
        indices = assign_nested_indices(8, [[0, 1], [2, 3, 4]])
        assert indices[0] | indices[1] == indices[1]
        assert indices[2] | indices[3] | indices[4] == indices[4]

    def test_group_too_large_for_width(self):
        with pytest.raises(EncoderError, match="equation 5"):
            assign_nested_indices(4, [[0, 1, 2, 3]], width=3)

    def test_width_grows_to_group(self):
        # 5 conflicting tokens force a 5-bit index space.
        indices = assign_nested_indices(5, [[0, 1, 2, 3, 4]])
        assert max(indices).bit_length() == 5

    def test_duplicate_membership_rejected(self):
        with pytest.raises(EncoderError, match="two conflict groups"):
            assign_nested_indices(4, [[0, 1], [1, 2]])


class TestMaskEncoder:
    def test_emits_assigned_indices(self):
        indices = [1, 3, 7, 4]
        nl, result = _encoder_rig(4, build_mask_encoder, indices=indices)
        sim = Simulator(nl)
        for k, expected in enumerate(indices):
            sim.reset()
            index, valid = _read_index(sim, result, {k}, 4)
            assert (index, valid) == (expected, 1)

    def test_priority_resolution_end_to_end(self):
        """Simultaneous detections emit the highest-priority index."""
        indices = assign_nested_indices(3, [[0, 1, 2]])
        nl, result = _encoder_rig(3, build_mask_encoder, indices=indices)
        sim = Simulator(nl)
        index, valid = _read_index(sim, result, {0, 1, 2}, 3)
        assert index == indices[2]  # highest priority member

    def test_duplicate_indices_rejected(self):
        nl = Netlist()
        inputs = [nl.input("a"), nl.input("b")]
        with pytest.raises(EncoderError, match="unique"):
            build_mask_encoder(nl, inputs, [1, 1])

    def test_length_mismatch_rejected(self):
        nl = Netlist()
        with pytest.raises(EncoderError):
            build_mask_encoder(nl, [nl.input("a")], [1, 2])


class TestCaseEncoder:
    def test_functional_but_deep(self):
        nl, result = _encoder_rig(9, build_case_encoder)
        sim = Simulator(nl)
        for k in (0, 4, 8):
            sim.reset()
            index, valid = _read_index(sim, result, {k}, 9)
            assert (index, valid) == (k + 1, 1)

    def test_highest_position_wins(self):
        nl, result = _encoder_rig(9, build_case_encoder)
        sim = Simulator(nl)
        index, _ = _read_index(sim, result, {1, 6}, 9)
        assert index == 7

    def test_depth_grows_linearly(self):
        """The §3.4 warning: the CASE chain is the critical path."""
        from repro.rtl.analysis import max_logic_depth

        nl_small, _ = _encoder_rig(4, build_case_encoder)
        nl_large, _ = _encoder_rig(32, build_case_encoder)
        assert max_logic_depth(nl_large) > max_logic_depth(nl_small) * 3
