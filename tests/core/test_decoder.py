"""DecoderBank: gate-level decode correctness and structure."""

import pytest

from repro.core.decoder import CUR_STAGE, NXT_STAGE, DecoderBank, DecoderOptions
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator, byte_stimulus

WHITESPACE = frozenset(b" \t\r\n")


def _bank(options=None, delimiters=WHITESPACE):
    nl = Netlist("dec")
    bank = DecoderBank(nl, delimiters, options=options)
    return nl, bank


def _run_decode(nl, bank, taps, data):
    """Feed ``data`` and collect each tap's per-byte value."""
    for name, net in taps.items():
        nl.output(name, net)
    sim = Simulator(nl)
    frames = byte_stimulus(data, extra={"in_valid": 1})
    idle = {f"data{b}": 0 for b in range(8)}
    idle["in_valid"] = 0
    frames += [dict(idle) for _ in range(CUR_STAGE + 2)]
    history = {name: [] for name in taps}
    for frame in frames:
        out = sim.step(frame)
        for name in taps:
            history[name].append(out[name])
    return history


class TestCurrentDecode:
    @pytest.mark.parametrize("nibble_sharing", [True, False])
    def test_single_char(self, nibble_sharing):
        nl, bank = _bank(DecoderOptions(nibble_sharing=nibble_sharing))
        taps = {"a": bank.cur(frozenset(b"a"))}
        data = b"banana"
        history = _run_decode(nl, bank, taps, data)
        for i, byte in enumerate(data):
            assert history["a"][i + CUR_STAGE] == (byte == ord("a")), i

    @pytest.mark.parametrize("nibble_sharing", [True, False])
    def test_class_decode(self, nibble_sharing):
        nl, bank = _bank(DecoderOptions(nibble_sharing=nibble_sharing))
        alnum = frozenset(range(ord("a"), ord("z") + 1)) | frozenset(
            range(ord("0"), ord("9") + 1)
        )
        taps = {"cls": bank.cur(alnum)}
        data = b"a1! z9\x00"
        history = _run_decode(nl, bank, taps, data)
        for i, byte in enumerate(data):
            assert history["cls"][i + CUR_STAGE] == (byte in alnum), i

    def test_negated_class_via_complement(self):
        nl, bank = _bank()
        not_a = frozenset(range(256)) - frozenset(b"a")
        taps = {"na": bank.cur(not_a)}
        data = b"ab"
        history = _run_decode(nl, bank, taps, data)
        assert history["na"][0 + CUR_STAGE] == 0
        assert history["na"][1 + CUR_STAGE] == 1

    def test_full_byte_set_is_const(self):
        nl, bank = _bank()
        assert nl.is_const(bank.cur(frozenset(range(256)))) == 1
        assert nl.is_const(bank.cur(frozenset())) == 0

    def test_invalid_bytes_decode_to_zero(self):
        nl, bank = _bank()
        taps = {"a": bank.cur(frozenset(b"a"))}
        for name, net in taps.items():
            nl.output(name, net)
        sim = Simulator(nl)
        frames = byte_stimulus(b"a", extra={"in_valid": 0})
        idle = {f"data{b}": 0 for b in range(8)}
        idle["in_valid"] = 0
        frames += [dict(idle)] * (CUR_STAGE + 1)
        values = [sim.step(f)["a"] for f in frames]
        assert not any(values)


class TestLookahead:
    def test_nxt_is_one_stage_earlier(self):
        nl, bank = _bank()
        byte_set = frozenset(b"x")
        taps = {"cur": bank.cur(byte_set), "nxt": bank.nxt(byte_set)}
        data = b"ax"
        history = _run_decode(nl, bank, taps, data)
        # 'x' is byte index 1: cur sees it at cycle 1+CUR_STAGE, nxt one
        # cycle earlier — during the cycle the 'a' is current.
        assert history["nxt"][1 + NXT_STAGE] == 1
        assert history["cur"][1 + CUR_STAGE] == 1
        assert NXT_STAGE + 1 == CUR_STAGE


class TestSharing:
    def test_identical_sets_share(self):
        nl, bank = _bank()
        first = bank.cur(frozenset(b"q"))
        second = bank.cur(frozenset(b"q"))
        assert first is second  # replicas=1: same tap
        assert bank.n_decoded_sets >= 1

    def test_replicas_produce_distinct_taps(self):
        nl, bank = _bank(DecoderOptions(replicas=2))
        first = bank.cur(frozenset(b"q"))
        second = bank.cur(frozenset(b"q"))
        third = bank.cur(frozenset(b"q"))
        assert first is not second
        assert third is first  # round robin wraps

    def test_replicas_are_equivalent(self):
        nl, bank = _bank(DecoderOptions(replicas=2))
        taps = {
            "r0": bank.cur(frozenset(b"k")),
            "r1": bank.cur(frozenset(b"k")),
        }
        history = _run_decode(nl, bank, taps, b"kok")
        assert history["r0"] == history["r1"]

    def test_nibble_sharing_reduces_gates(self):
        nl_shared, bank_shared = _bank(DecoderOptions(nibble_sharing=True))
        nl_plain, bank_plain = _bank(DecoderOptions(nibble_sharing=False))
        chars = [frozenset([b]) for b in b"abcdefghij"]
        for byte_set in chars:
            bank_shared.cur(byte_set)
            bank_plain.cur(byte_set)
        assert nl_shared.n_gates < nl_plain.n_gates


class TestArmingSignals:
    def test_delim_or_idle_true_on_delimiter_and_idle(self):
        nl, bank = _bank()
        nl.output("hold", bank.cur_delim_or_idle())
        sim = Simulator(nl)
        data = b"a b"
        frames = byte_stimulus(data, extra={"in_valid": 1})
        idle = {f"data{b}": 0 for b in range(8)}
        idle["in_valid"] = 0
        frames += [dict(idle)] * (CUR_STAGE + 1)
        values = [sim.step(f)["hold"] for f in frames]
        assert values[0 + CUR_STAGE] == 0  # 'a'
        assert values[1 + CUR_STAGE] == 1  # ' '
        assert values[2 + CUR_STAGE] == 0  # 'b'
        assert values[-1] == 1  # idle

    def test_start_pulse_exactly_once(self):
        nl, bank = _bank()
        nl.output("start", bank.start_pulse)
        sim = Simulator(nl)
        frames = byte_stimulus(b"abc", extra={"in_valid": 1})
        values = [sim.step(f)["start"] for f in frames]
        values += [sim.step({"in_valid": 1})["start"] for _ in range(8)]
        assert sum(values) == 1
        assert values[CUR_STAGE] == 1

    def test_bad_replica_count_rejected(self):
        with pytest.raises(ValueError):
            DecoderOptions(replicas=0)
