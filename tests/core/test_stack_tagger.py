"""§5.2 stack extension: behavioral PDA tagger and the hardware
counter-stack checker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generator import TaggerGenerator
from repro.core.stack import StackTagger
from repro.core.stack_hw import (
    attach_depth_checker,
    run_with_checker,
    self_embedding_pairs,
)
from repro.errors import GenerationError, GrammarError, ParseError
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc
from repro.grammar.symbols import Terminal
from repro.grammar.yacc_parser import parse_yacc_grammar


class TestStackTaggerParens:
    @pytest.fixture(scope="class")
    def tagger(self):
        return StackTagger(balanced_parens())

    @pytest.mark.parametrize("data", [b"0", b"(0)", b"((0))", b"( ( 0 ) )"])
    def test_accepts_balanced(self, tagger, data):
        assert tagger.accepts(data)

    @pytest.mark.parametrize(
        "data", [b"((0)", b"(0))", b"()", b"", b")0(", b"(((0"]
    )
    def test_rejects_unbalanced(self, tagger, data):
        assert not tagger.accepts(data)

    def test_depth_tags(self, tagger):
        depths = [s.depth for s in tagger.run(b"((0))")]
        assert depths == [0, 1, 2, 1, 0]

    def test_max_observed_depth(self, tagger):
        assert tagger.max_observed_depth(b"(((0)))") == 3

    def test_superset_gap_closed(self, tagger):
        """Exactly the strings the FSA over-accepts are now rejected."""
        from repro.core.tagger import BehavioralTagger

        fsa = BehavioralTagger(balanced_parens())
        for data in (b"((0)", b"(0))"):
            # the stack-less tagger happily tags every token ...
            assert len(fsa.tag(data)) == sum(1 for b in data if b in b"()0")
            # ... the stack tagger rejects the sentence.
            assert not tagger.accepts(data)


class TestStackTaggerGeneral:
    def test_ite_nested_depths(self):
        tagger = StackTagger(if_then_else())
        stacked = tagger.run(
            b"if true then if false then go else go else stop"
        )
        by_token = [(s.token.token, s.depth) for s in stacked]
        # inner and outer else now distinguishable by depth
        else_depths = [d for t, d in by_token if t == "else"]
        assert else_depths == [1, 0]

    def test_rejects_illegal_transitions(self):
        tagger = StackTagger(if_then_else())
        with pytest.raises(ParseError):
            tagger.run(b"if then go")
        assert not tagger.accepts(b"go stop")  # trailing token

    def test_xmlrpc_message(self, xmlrpc_message):
        tagger = StackTagger(xmlrpc())
        tokens = tagger.tag(xmlrpc_message)
        assert tokens[0].token == "<methodCall>"
        assert tokens[-1].token == "</methodCall>"

    def test_xmlrpc_matches_ll1(self, xmlrpc_message):
        from repro.software.ll1 import LL1Parser

        stack_tokens = StackTagger(xmlrpc()).tag(xmlrpc_message)
        ll1_tokens = LL1Parser(xmlrpc()).parse(xmlrpc_message).tokens
        assert [
            (t.token, t.occurrence, t.start, t.end) for t in stack_tokens
        ] == [(t.token, t.occurrence, t.start, t.end) for t in ll1_tokens]

    def test_stream_mode(self):
        tagger = StackTagger(balanced_parens(), stream=True)
        assert tagger.accepts(b"(0) 0 ((0))")
        assert not tagger.accepts(b"(0) (0")

    def test_ambiguous_epsilon_grammar_merges_threads(self):
        """Regression: equivalent threads merge instead of multiplying.

        This fuzz-found grammar derives 8 a's many ways; without the
        per-round (position, stack, resume) merge the tagger forked
        past ``max_threads`` and ``accepts`` misread the explosion as
        a rejection of a sentence the grammar derives.
        """
        from repro.grammar.cfg import Grammar
        from repro.grammar.lexspec import LexSpec
        from repro.grammar.symbols import NonTerminal

        lexspec = LexSpec()
        lexspec.define_literal("a")
        grammar = Grammar("fuzz-regression", lexspec)
        a = Terminal("a")
        s0, s1, s2, s3 = (NonTerminal(f"S{i}") for i in range(4))
        grammar.add(s0, [s1, s1, s1])
        grammar.add(s0, [])
        grammar.add(s0, [a, a, a, a])
        grammar.add(s1, [a, a, a])
        grammar.add(s1, [])
        grammar.add(s1, [a, a, s2, s2])
        grammar.add(s2, [s3, s3, a])
        grammar.add(s3, [])
        grammar.start = s0
        tagger = StackTagger(grammar, max_depth=32, max_threads=256)
        # S1 derives 0, 3, or 4 a's, so S1 S1 S1 reaches 7 and 8 ...
        assert tagger.accepts(b"a a a a a a a a")
        assert tagger.accepts(b"a a a a a a a")
        # ... but never 5, and the merge keeps that an honest reject.
        assert not tagger.accepts(b"a a a a a")

    def test_left_recursion_detected(self):
        g = parse_yacc_grammar(
            """
            %%
            e: e "+" t | t;
            t: "x";
            %%
            """
        )
        tagger = StackTagger(g, max_depth=8)
        with pytest.raises(GrammarError, match="left-recursive"):
            tagger.accepts(b"x")


@st.composite
def paren_strings(draw):
    depth = draw(st.integers(0, 6))
    spaces = draw(st.booleans())
    sep = b" " if spaces else b""
    return sep.join([b"("] * depth + [b"0"] + [b")"] * depth)


class TestStackTaggerProperties:
    @given(data=paren_strings())
    @settings(max_examples=40, deadline=None)
    def test_all_balanced_accepted(self, data):
        assert StackTagger(balanced_parens(), max_depth=16).accepts(data)

    @given(
        opens=st.integers(0, 5),
        closes=st.integers(0, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_membership_is_exactly_balance(self, opens, closes):
        data = b"(" * opens + b"0" + b")" * closes
        tagger = StackTagger(balanced_parens(), max_depth=16)
        assert tagger.accepts(data) == (opens == closes)


class TestHardwareDepthChecker:
    @pytest.fixture(scope="class")
    def checked_circuit(self):
        circuit = TaggerGenerator().generate(balanced_parens())
        attach_depth_checker(circuit, depth=8)
        return circuit

    def test_self_embedding_detection(self):
        pushes, pops = self_embedding_pairs(balanced_parens())
        assert pushes == {Terminal("(")}
        assert pops == {Terminal(")")}

    def test_ite_is_self_embedding_too(self):
        # E → if C then E else E embeds E with 'else' still owed.
        pushes, pops = self_embedding_pairs(if_then_else())
        assert Terminal("then") in pushes
        assert pops == {Terminal("else")}

    def test_not_applicable_without_embedding(self):
        right_recursive = parse_yacc_grammar(
            """
            %%
            list: | "x" list;
            %%
            """
        )
        with pytest.raises(GenerationError, match="self-embedding"):
            self_embedding_pairs(right_recursive)

    @pytest.mark.parametrize(
        "data,accepted",
        [
            (b"0", True),
            (b"(0)", True),
            (b"((0))", True),
            (b"( ( 0 ) )", True),
            (b"((0)", False),   # unclosed: not balanced at end
            (b"(0))", False),   # extra closer: hardware underflow
            (b"(((0", False),
        ],
    )
    def test_hardware_verdicts(self, checked_circuit, data, accepted):
        run = run_with_checker(checked_circuit, data)
        assert run.accepted == accepted, data

    def test_agrees_with_behavioral_stack(self, checked_circuit):
        soft = StackTagger(balanced_parens())
        for data in (b"0", b"(0)", b"((0)", b"(0))", b"((((0))))"):
            hard = run_with_checker(checked_circuit, data).accepted
            assert hard == soft.accepts(data), data

    def test_overflow_flag(self):
        circuit = TaggerGenerator().generate(balanced_parens())
        attach_depth_checker(circuit, depth=2)
        run = run_with_checker(circuit, b"(((0)))")
        assert run.stack_error  # nesting exceeded the hardware depth
