"""Follow-set wiring: structure of the assembled scanner."""


from repro.core.decoder import DecoderBank
from repro.core.wiring import (
    WiringOptions,
    build_scanner,
    estimate_conflict_groups,
)
from repro.rtl.netlist import Netlist


def _scanner(grammar, options=None):
    nl = Netlist("scan")
    bank = DecoderBank(nl, grammar.lexspec.delimiters.matched_bytes())
    scanner = build_scanner(nl, bank, grammar, options)
    return nl, scanner


class TestStructure:
    def test_one_instance_per_occurrence(self, ite_grammar):
        _nl, scanner = _scanner(ite_grammar)
        assert len(scanner.instances) == 7

    def test_collapsed_one_per_terminal(self, xmlrpc_grammar):
        _nl, dup = _scanner(xmlrpc_grammar)
        _nl2, collapsed = _scanner(
            xmlrpc_grammar, WiringOptions(context_duplication=False)
        )
        assert len(collapsed.instances) == len(
            xmlrpc_grammar.used_terminals()
        )
        assert len(dup.instances) > len(collapsed.instances)

    def test_netlist_validates(self, xmlrpc_grammar):
        nl, _scanner_obj = _scanner(xmlrpc_grammar)
        nl.validate()

    def test_always_start_mode_uses_const_enable(self, ite_grammar):
        nl, scanner = _scanner(ite_grammar, WiringOptions(start_mode="always"))
        start_units = [o for o in scanner.order if o in scanner.graph.starts]
        for unit in start_units:
            assert nl.is_const(scanner.instances[unit].enable) == 1

    def test_shared_glushkov_between_contexts(self, xmlrpc_grammar):
        _nl, scanner = _scanner(xmlrpc_grammar)
        strings = [
            inst
            for occ, inst in scanner.instances.items()
            if occ.terminal.name == "STRING"
        ]
        assert len(strings) == 3
        assert strings[0].glushkov is strings[1].glushkov


class TestConflictGroups:
    def test_value_context_digit_tokens_conflict(self, xmlrpc_grammar):
        _nl, scanner = _scanner(xmlrpc_grammar)
        groups = estimate_conflict_groups(scanner)
        # INT (i4 context) and INT (int context) never share an
        # enabler, but INT/DOUBLE-style collisions inside one context
        # exist in the dateTime element (YEAR/MONTH/DAY share digits
        # only sequentially). At minimum the groups structure is sane:
        flattened = [u for g in groups for u in g]
        assert len(flattened) == len(set(flattened))
        for group in groups:
            assert len(group) >= 2

    def test_lower_priority_for_broader_patterns(self):
        from repro.grammar.yacc_parser import parse_yacc_grammar

        g = parse_yacc_grammar(
            """
            WORD [a-z0-9]+
            NUM  [0-9]+
            %%
            s: "k" v;
            v: WORD | NUM;
            %%
            """
        )
        _nl, scanner = _scanner(g)
        groups = estimate_conflict_groups(scanner)
        assert len(groups) == 1
        ordered = [scanner.order[i].terminal.name for i in groups[0]]
        # WORD (bigger alphabet) must come first = lowest priority.
        assert ordered == ["WORD", "NUM"]


class TestConflictSoundness:
    def test_xmlrpc_streams_are_one_hot(self, xmlrpc_grammar):
        """Validates the §3.4 assumption the or-tree encoder relies on:
        'only one tokenizer output will be asserted at any given clock
        cycle' — true on conforming XML-RPC streams."""
        from collections import Counter

        from repro.apps.xmlrpc import WorkloadGenerator
        from repro.core.tagger import BehavioralTagger

        stream, _truth = WorkloadGenerator(seed=3).stream(15)
        ends = Counter(
            e.end for e in BehavioralTagger(xmlrpc_grammar).events(stream)
        )
        assert all(count == 1 for count in ends.values())

    def test_simultaneous_detects_share_a_group(self):
        """When simultaneity is engineered, the heuristic groups it."""
        from repro.core.tagger import BehavioralTagger
        from repro.grammar.yacc_parser import parse_yacc_grammar

        g = parse_yacc_grammar(
            """
            NUM  [0-9]+
            WORD [a-z0-9]+
            %%
            s: "k" v;
            v: NUM | WORD;
            %%
            """
        )
        events = BehavioralTagger(g).events(b"k 42")
        simultaneous = [e for e in events if e.end == 4]
        assert len(simultaneous) == 2  # NUM and WORD both fire

        _nl, scanner = _scanner(g)
        groups = estimate_conflict_groups(scanner)
        position = {u: i for i, u in enumerate(scanner.order)}
        fired = {position[e.occurrence] for e in simultaneous}
        assert any(fired <= set(group) for group in groups)


class TestLoopOnAccept:
    def test_restart_edges_present(self, xmlrpc_grammar):
        _nl, scanner = _scanner(xmlrpc_grammar)
        # With loop_on_accept the start tokenizer's enable includes the
        # accepting detect; verified behaviorally: two messages tag.
        from repro.core.tagger import BehavioralTagger

        tagger = BehavioralTagger(xmlrpc_grammar)
        one = b"<methodCall><methodName>a1</methodName><params></params></methodCall>"
        tokens = tagger.tag(one + b"\n" + one)
        assert [t.token for t in tokens].count("<methodCall>") == 2

    def test_no_loop_single_message_only(self, xmlrpc_grammar):
        from repro.core.generator import TaggerOptions
        from repro.core.tagger import BehavioralTagger

        options = TaggerOptions(wiring=WiringOptions(loop_on_accept=False))
        tagger = BehavioralTagger(xmlrpc_grammar, options)
        one = b"<methodCall><methodName>a1</methodName><params></params></methodCall>"
        tokens = tagger.tag(one + b"\n" + one)
        assert [t.token for t in tokens].count("<methodCall>") == 1
