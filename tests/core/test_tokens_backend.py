"""TaggedToken model and the back-end pipeline protocol."""

from repro.core.backend import Backend, TaggingPipeline
from repro.core.tagger import BehavioralTagger
from repro.core.tokens import TaggedToken
from repro.grammar.analysis import Occurrence
from repro.grammar.symbols import Terminal


def _token():
    return TaggedToken(
        token="STRING",
        occurrence=Occurrence(1, 1, Terminal("STRING")),
        lexeme=b"deposit",
        start=24,
        end=31,
        index=5,
    )


class TestTaggedToken:
    def test_context_name(self):
        assert _token().context == "p1.1"

    def test_text_decodes(self):
        assert _token().text() == "deposit"

    def test_str_format(self):
        text = str(_token())
        assert "STRING@p1.1" in text
        assert "[24:31]" in text

    def test_frozen(self):
        import dataclasses

        token = _token()
        try:
            token.start = 0  # type: ignore[misc]
            raised = False
        except dataclasses.FrozenInstanceError:
            raised = True
        assert raised

    def test_bad_utf8_replaced(self):
        token = TaggedToken(
            token="B",
            occurrence=Occurrence(0, 0, Terminal("B")),
            lexeme=b"\xff\xfe",
            start=0,
            end=2,
        )
        assert token.text()  # no exception


class _Collector:
    def __init__(self):
        self.tokens = []
        self.ended = 0

    def on_token(self, token, data):
        self.tokens.append(token.token)

    def on_end(self, data):
        self.ended += 1


class TestPipeline:
    def test_dispatches_in_order(self, ite_grammar):
        sink_a, sink_b = _Collector(), _Collector()
        pipeline = TaggingPipeline(
            BehavioralTagger(ite_grammar), [sink_a, sink_b]
        )
        tokens = pipeline.process(b"if true then go else stop")
        assert sink_a.tokens == [t.token for t in tokens]
        assert sink_b.tokens == sink_a.tokens
        assert sink_a.ended == 1

    def test_collector_satisfies_protocol(self):
        assert isinstance(_Collector(), Backend)
