"""Behavioral tagger ≡ gate-level netlist simulation.

The central correctness property of the reproduction: the fast
software twin and the generated hardware must produce identical
detection events (occurrence, end position) on any input — valid,
invalid, adversarial or random.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.core.tokenizer import TokenizerTemplateOptions
from repro.core.wiring import WiringOptions
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc


@pytest.fixture(scope="module")
def ite_pair():
    grammar = if_then_else()
    circuit = TaggerGenerator().generate(grammar)
    return BehavioralTagger(grammar), GateLevelTagger(circuit)


@pytest.fixture(scope="module")
def xmlrpc_pair():
    grammar = xmlrpc()
    circuit = TaggerGenerator().generate(grammar)
    return BehavioralTagger(grammar), GateLevelTagger(circuit)


class TestFixedInputs:
    @pytest.mark.parametrize(
        "data",
        [
            b"if true then go else stop",
            b"go",
            b"   stop   ",
            b"if if if",          # non-conforming
            b"iffy gone stopper",  # embedded keywords
            b"",
            b"true false then",
            b"if  true\tthen\n go else stop",
        ],
    )
    def test_ite(self, ite_pair, data):
        behavioral, gate = ite_pair
        assert behavioral.events(data) == gate.events(data)

    @pytest.mark.parametrize(
        "data",
        [
            b"<methodCall><methodName>buy</methodName><params></params></methodCall>",
            b"<params><methodName>oops</methodName>",       # wrong order
            b"<methodCall><methodName></methodName>",        # empty string
            b"random noise < > 123",
            b"<i4>42</i4>",                                  # fragment
        ],
    )
    def test_xmlrpc(self, xmlrpc_pair, data):
        behavioral, gate = xmlrpc_pair
        assert behavioral.events(data) == gate.events(data)

    def test_full_message_tokens_and_lexemes(self, xmlrpc_pair, xmlrpc_message):
        behavioral, gate = xmlrpc_pair
        beh_tokens = behavioral.tag(xmlrpc_message)
        gate_tokens = gate.tag(xmlrpc_message)
        assert [
            (t.token, t.occurrence, t.start, t.end, t.lexeme)
            for t in beh_tokens
        ] == [
            (t.token, t.occurrence, t.start, t.end, t.lexeme)
            for t in gate_tokens
        ]

    def test_multi_message_stream(self, xmlrpc_pair, xmlrpc_stream):
        behavioral, gate = xmlrpc_pair
        assert behavioral.events(xmlrpc_stream) == gate.events(xmlrpc_stream)


class TestEncoderConsistency:
    def test_index_stream_matches_events(self, ite_pair):
        behavioral, gate = ite_pair
        data = b"if true then go else stop"
        events = gate.events(data)
        index_stream = gate.index_stream(data)
        # Every cycle with exactly one detection must appear in the
        # index stream with that occurrence's index.
        by_end = {}
        for event in events:
            by_end.setdefault(event.end, []).append(event)
        indexed = dict(index_stream)
        for end, evs in by_end.items():
            if len(evs) == 1:
                expected = gate.circuit.index_of(evs[0].occurrence)
                assert indexed[end] == expected

    def test_behavioral_index_matches_circuit(self, ite_pair):
        behavioral, gate = ite_pair
        data = b"go"
        beh = behavioral.tag(data)[0]
        circuit_index = gate.circuit.index_of(beh.occurrence)
        assert beh.index == circuit_index


class TestOptionVariants:
    @pytest.mark.parametrize(
        "options",
        [
            TaggerOptions(wiring=WiringOptions(context_duplication=False)),
            TaggerOptions(wiring=WiringOptions(start_mode="always")),
            TaggerOptions(wiring=WiringOptions(loop_on_accept=False)),
            TaggerOptions(
                wiring=WiringOptions(
                    tokenizer=TokenizerTemplateOptions(longest_match=False)
                )
            ),
            TaggerOptions(
                wiring=WiringOptions(
                    tokenizer=TokenizerTemplateOptions(keyword_boundary=True)
                )
            ),
        ],
        ids=["no-dup", "always", "no-loop", "no-longest", "boundary"],
    )
    def test_equivalence_under_options(self, options):
        grammar = if_then_else()
        behavioral = BehavioralTagger(grammar, options)
        gate = GateLevelTagger(TaggerGenerator(options).generate(grammar))
        for data in (
            b"if true then go else stop",
            b"go stop go",
            b"gone iffy",
            b"if true then if false then go else go else stop",
        ):
            assert behavioral.events(data) == gate.events(data), data


class TestPropertyEquivalence:
    @given(
        data=st.text(
            alphabet="ifthenlsgopt ruefa\t\n", min_size=0, max_size=24
        ).map(lambda s: s.encode())
    )
    @settings(max_examples=40, deadline=None)
    def test_ite_random_text(self, ite_pair, data):
        behavioral, gate = ite_pair
        assert behavioral.events(data) == gate.events(data)

    @given(
        parts=st.lists(
            st.sampled_from(
                [
                    b"<methodCall>", b"</methodCall>", b"<methodName>",
                    b"</methodName>", b"<params>", b"</params>",
                    b"<param>", b"</param>", b"<i4>", b"</i4>",
                    b"buy", b"42", b"-7", b" ", b"\n", b"x",
                ]
            ),
            min_size=0,
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_xmlrpc_random_fragments(self, xmlrpc_pair, parts):
        behavioral, gate = xmlrpc_pair
        data = b"".join(parts)
        assert behavioral.events(data) == gate.events(data)


class TestBalancedParens:
    def test_equivalence(self):
        grammar = balanced_parens()
        behavioral = BehavioralTagger(grammar)
        gate = GateLevelTagger(TaggerGenerator().generate(grammar))
        for data in (b"((0))", b"(0", b"0))", b"()", b"0 0", b"((((0"):
            assert behavioral.events(data) == gate.events(data), data
