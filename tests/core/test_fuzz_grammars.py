"""Random-grammar fuzzing: the architecture holds for arbitrary CFGs.

Two properties over hypothesis-generated grammars:

1. **Model equivalence** — the behavioral tagger and the generated
   gate-level netlist produce identical detection events on derived
   sentences and on mutated (non-conforming) variants.
2. **Completeness** — every token of a valid derivation is detected
   (the tagger accepts a superset of the language, so valid sentences
   are always fully tagged).
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.core.generator import TaggerGenerator
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.errors import GrammarError
from repro.grammar.cfg import Grammar
from repro.grammar.lexspec import LexSpec
from repro.grammar.symbols import NonTerminal, Terminal

_TERMINAL_CHARS = "abcdefgh"


@st.composite
def random_grammars(draw):
    """Small acyclic grammars over prefix-free single-char tokens."""
    n_terminals = draw(st.integers(2, 6))
    n_nonterminals = draw(st.integers(1, 4))
    lexspec = LexSpec()
    terminals = []
    for char in _TERMINAL_CHARS[:n_terminals]:
        lexspec.define_literal(char)
        terminals.append(Terminal(char))
    grammar = Grammar("fuzz", lexspec)
    nonterminals = [NonTerminal(f"S{i}") for i in range(n_nonterminals)]

    for i, lhs in enumerate(nonterminals):
        n_productions = draw(st.integers(1, 3))
        for _ in range(n_productions):
            length = draw(st.integers(0, 4))
            rhs = []
            for _ in range(length):
                # Lower-indexed NTs only: acyclic, so derivations end.
                deeper = nonterminals[i + 1 :]
                if deeper and draw(st.booleans()):
                    rhs.append(draw(st.sampled_from(deeper)))
                else:
                    rhs.append(draw(st.sampled_from(terminals)))
            grammar.add(lhs, rhs)
    grammar.start = nonterminals[0]
    try:
        grammar.validate()
    except GrammarError:
        assume(False)
    # The tagger needs at least one terminal occurrence.
    assume(grammar.used_terminals())
    return grammar


def _derive(grammar: Grammar, rng: random.Random, spaced: bool) -> bytes:
    """One random sentence of the grammar (acyclic, so this ends)."""
    out: list[bytes] = []

    def expand(symbol) -> None:
        if isinstance(symbol, Terminal):
            out.append(symbol.name.encode())
            return
        production = rng.choice(grammar.productions_for(symbol))
        for child in production.rhs:
            expand(child)

    assert grammar.start is not None
    expand(grammar.start)
    separator = b" " if spaced else b""
    return separator.join(out)


@given(
    grammar=random_grammars(),
    seed=st.integers(0, 10_000),
    spaced=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_models_agree_on_derivations(grammar, seed, spaced):
    rng = random.Random(seed)
    behavioral = BehavioralTagger(grammar)
    gate = GateLevelTagger(TaggerGenerator().generate(grammar))
    for _ in range(3):
        sentence = _derive(grammar, rng, spaced)
        assert behavioral.events(sentence) == gate.events(sentence), sentence


@given(
    grammar=random_grammars(),
    seed=st.integers(0, 10_000),
    junk=st.text(alphabet=_TERMINAL_CHARS + "xz ", max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_models_agree_on_mutations(grammar, seed, junk):
    """Equivalence must hold on junk too, not just valid input."""
    rng = random.Random(seed)
    behavioral = BehavioralTagger(grammar)
    gate = GateLevelTagger(TaggerGenerator().generate(grammar))
    sentence = bytearray(_derive(grammar, rng, spaced=True))
    insert_at = rng.randrange(len(sentence) + 1)
    mutated = bytes(sentence[:insert_at]) + junk.encode() + bytes(
        sentence[insert_at:]
    )
    assert behavioral.events(mutated) == gate.events(mutated)


@given(
    grammar=random_grammars(),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=50, deadline=None)
def test_follow_sets_sound_on_derivations(grammar, seed):
    """Fig. 8 soundness: adjacent tokens of any derivation respect the
    computed Follow sets (the property the Fig. 11 wiring relies on)."""
    from repro.grammar.analysis import analyze_grammar
    from repro.grammar.symbols import END

    analysis = analyze_grammar(grammar)
    rng = random.Random(seed)
    tokens: list[Terminal] = []

    def expand(symbol):
        if isinstance(symbol, Terminal):
            tokens.append(symbol)
            return
        for child in rng.choice(grammar.productions_for(symbol)).rhs:
            expand(child)

    expand(grammar.start)
    for current, following in zip(tokens, tokens[1:]):
        assert following in analysis.follow[current], (current, following)
    if tokens:
        assert tokens[0] in analysis.start_terminals
        assert END in analysis.follow[tokens[-1]]


@given(
    grammar=random_grammars(),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_stack_tagger_accepts_all_derivations(grammar, seed):
    """§5.2 stack tagger: complete derivations are always accepted."""
    from repro.core.stack import StackTagger

    rng = random.Random(seed)
    tokens: list[bytes] = []

    def expand(symbol):
        if isinstance(symbol, Terminal):
            tokens.append(symbol.name.encode())
            return
        for child in rng.choice(grammar.productions_for(symbol)).rhs:
            expand(child)

    expand(grammar.start)
    data = b" ".join(tokens)
    assume(data)  # the empty sentence has no tokens to tag
    tagger = StackTagger(grammar, max_depth=32, max_threads=256)
    assert tagger.accepts(data), (grammar.describe(), data)


@given(
    grammar=random_grammars(),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_valid_derivations_fully_tagged(grammar, seed):
    """Superset acceptance: every derived token is detected."""
    rng = random.Random(seed)
    behavioral = BehavioralTagger(grammar)
    sentence_tokens: list[bytes] = []

    def expand(symbol):
        if isinstance(symbol, Terminal):
            sentence_tokens.append(symbol.name.encode())
            return
        for child in rng.choice(grammar.productions_for(symbol)).rhs:
            expand(child)

    expand(grammar.start)
    data = b" ".join(sentence_tokens)
    detected = {
        (event.end, event.occurrence.terminal.name)
        for event in behavioral.events(data)
    }
    position = 0
    for token in sentence_tokens:
        end = position + len(token)
        assert (end, token.decode()) in detected, (data, token, end)
        position = end + 1  # the joining space
