"""Single-tokenizer hardware vs the software longest-match oracle.

Each test builds a one-token circuit (enable = start pulse or const 1)
and compares the detect pulses on the output pin against Glushkov/NFA
longest-match semantics — Figs. 6 and 7 of the paper.
"""

from hypothesis import given, settings, strategies as st

from repro.core.decoder import DecoderBank
from repro.core.tokenizer import (
    DETECT_LATENCY,
    TokenizerTemplateOptions,
    build_tokenizer,
)
from repro.grammar.lexspec import LexSpec
from repro.grammar.regex.glushkov import build_glushkov
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator, stimulus_with_valid

WHITESPACE = frozenset(b" \t\r\n")


def _single_token_circuit(
    pattern: str,
    always_enabled: bool = True,
    options: TokenizerTemplateOptions | None = None,
    delimiters=WHITESPACE,
    literal: str | None = None,
):
    nl = Netlist("one")
    bank = DecoderBank(nl, delimiters)
    spec = LexSpec()
    token = (
        spec.define_literal(literal)
        if literal is not None
        else spec.define("TOK", pattern)
    )
    enable = nl.const(1) if always_enabled else bank.start_pulse
    instance = build_tokenizer(
        nl, bank, token, enable, "tok", options=options
    )
    nl.output("det", instance.detect)
    nl.validate()
    return nl, instance


def _detect_ends(nl, data: bytes) -> list[int]:
    """End positions (exclusive) where the detect pin pulsed."""
    sim = Simulator(nl)
    ends = []
    for cycle, frame in enumerate(stimulus_with_valid(data, DETECT_LATENCY + 2)):
        if sim.step(frame)["det"]:
            ends.append(cycle - DETECT_LATENCY + 1)
    return ends


class TestFixedStrings:
    def test_simple_string_detects_once(self):
        nl, _ = _single_token_circuit(None, literal="abc")
        assert _detect_ends(nl, b"xxabcxx") == [5]

    def test_multiple_occurrences(self):
        nl, _ = _single_token_circuit(None, literal="ab")
        assert _detect_ends(nl, b"ab ab ab") == [2, 5, 8]

    def test_overlapping_starts(self):
        nl, _ = _single_token_circuit(None, literal="aa")
        # always-enabled: matches at every alignment
        assert _detect_ends(nl, b"aaaa") == [2, 3, 4]

    def test_xml_tag(self):
        nl, _ = _single_token_circuit(None, literal="<i4>")
        assert _detect_ends(nl, b"<i4>7</i4>") == [4]


class TestRegexTemplates:
    def test_one_or_more_longest_only(self):
        """Fig. 7: a+ fires once, at the end of the run."""
        nl, _ = _single_token_circuit("a+")
        assert _detect_ends(nl, b"aaa b") == [3]

    def test_one_or_more_every_cycle_without_lookahead(self):
        """Fig. 6d without Fig. 7: detection at every cycle."""
        nl, _ = _single_token_circuit(
            "a+", options=TokenizerTemplateOptions(longest_match=False)
        )
        assert _detect_ends(nl, b"aaa b") == [1, 2, 3]

    def test_optional_prefix(self):
        nl, _ = _single_token_circuit("[+-]?[0-9]+")
        assert _detect_ends(nl, b"+12 7") == [3, 5]

    def test_alternation(self):
        nl, _ = _single_token_circuit("cat|dog")
        assert _detect_ends(nl, b"dog cat") == [3, 7]

    def test_not_single_char(self):
        """Fig. 6b: !a matches any single non-'a' character."""
        nl, _ = _single_token_circuit("!a")
        ends = _detect_ends(nl, b"ab")
        assert 2 in ends and 1 not in ends

    def test_zero_or_more_tail(self):
        nl, _ = _single_token_circuit("ab*")
        assert _detect_ends(nl, b"abb a") == [3, 5]

    def test_double_pattern(self):
        nl, _ = _single_token_circuit(r"[+-]?[0-9]+\.[0-9]+")
        assert _detect_ends(nl, b"-3.50 ") == [5]


class TestArming:
    """The delimiter-stall of §3.2 ("only the first register of each
    token is stalled")."""

    def test_start_once_token_at_offset_not_found(self):
        nl, _ = _single_token_circuit(None, literal="go", always_enabled=False)
        # enabled once at stream start; "go" at offset 3 is not armed
        assert _detect_ends(nl, b"xx go") == []

    def test_arming_survives_delimiter_run(self):
        nl, _ = _single_token_circuit(None, literal="go", always_enabled=False)
        assert _detect_ends(nl, b"   go") == [5]

    def test_armed_consumed_by_first_nondelim(self):
        nl, _ = _single_token_circuit(None, literal="go", always_enabled=False)
        # 'x' consumes the arming; the later "go" must not match
        assert _detect_ends(nl, b"  x go") == []

    def test_partial_tokens_not_joined_across_delimiter(self):
        """'two partial tokens separated by a delimiter could be
        recognized as a single token' — must NOT happen."""
        nl, _ = _single_token_circuit(None, literal="ab", always_enabled=False)
        assert _detect_ends(nl, b"a b") == []

    def test_immediate_start_no_delimiter_needed(self):
        nl, _ = _single_token_circuit(None, literal="go", always_enabled=False)
        assert _detect_ends(nl, b"go") == [2]


class TestKeywordBoundary:
    def test_keyword_inside_longer_word(self):
        nl, _ = _single_token_circuit(None, literal="go")
        # paper's default behaviour: fires inside "gone"
        assert _detect_ends(nl, b"gone") == [2]

    def test_boundary_option_suppresses(self):
        nl, _ = _single_token_circuit(
            None,
            literal="go",
            options=TokenizerTemplateOptions(keyword_boundary=True),
        )
        assert _detect_ends(nl, b"gone") == []
        nl2, _ = _single_token_circuit(
            None,
            literal="go",
            options=TokenizerTemplateOptions(keyword_boundary=True),
        )
        assert _detect_ends(nl2, b"go on") == [2]


class TestEndOfStream:
    def test_trailing_repeat_fires_at_stream_end(self):
        """The look-ahead must not block detection at end of input."""
        nl, _ = _single_token_circuit("[0-9]+")
        assert _detect_ends(nl, b"123") == [3]


# ----------------------------------------------------------------------
# property: hardware detects == software longest-match semantics
# ----------------------------------------------------------------------
_patterns = st.sampled_from(
    ["a+", "ab", "[ab]+", "a?b", "(a|b)c", "[0-9]+", "ab*a?"]
)


@given(
    pattern=_patterns,
    data=st.text(alphabet="ab01 c", min_size=1, max_size=12).map(
        lambda s: s.encode()
    ),
)
@settings(max_examples=60, deadline=None)
def test_always_enabled_matches_oracle(pattern, data):
    """Always-enabled tokenizer == all positions' longest matches with
    the per-cycle hardware report semantics."""
    nl, _instance = _single_token_circuit(pattern)
    auto = build_glushkov(
        __import__("repro.grammar.regex.parser", fromlist=["parse_regex"])
        .parse_regex(pattern)
    )
    # Oracle: an end position e is detected iff some start s gives a
    # match s..e that cannot be extended to s..e+1 (longest-match rule
    # applied per last position, as the hardware does).
    expected: set[int] = set()
    for start in range(len(data)):
        active = set(auto.first)
        for offset in range(start, len(data)):
            byte = data[offset]
            consumed = {p for p in active if byte in auto.position_bytes[p]}
            if not consumed:
                break
            for p in consumed & auto.last:
                nxt = data[offset + 1] if offset + 1 < len(data) else None
                if nxt is None or nxt not in auto.extension_bytes(p):
                    expected.add(offset + 1)
            active = set()
            for p in consumed:
                active |= auto.follow[p]
    assert set(_detect_ends(nl, data)) == expected
