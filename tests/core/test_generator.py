"""Whole-tagger generation: ports, metadata, options plumbing."""

import pytest

from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.core.decoder import DecoderOptions
from repro.errors import GenerationError


class TestCircuitShape:
    def test_ports_present(self, ite_grammar):
        circuit = TaggerGenerator().generate(ite_grammar)
        outputs = circuit.netlist.outputs
        assert "match_valid" in outputs
        assert "accept" in outputs
        assert any(name.startswith("index") for name in outputs)
        assert any(name.startswith("det_") for name in outputs)
        inputs = {net.name for net in circuit.netlist.inputs}
        assert inputs == {f"data{b}" for b in range(8)} | {"in_valid"}

    def test_detect_port_per_occurrence(self, xmlrpc_grammar):
        circuit = TaggerGenerator().generate(xmlrpc_grammar)
        assert len(circuit.detect_ports) == len(circuit.occurrences)

    def test_encoder_metadata(self, ite_grammar):
        circuit = TaggerGenerator().generate(ite_grammar)
        first = circuit.occurrences[0]
        index = circuit.index_of(first)
        assert index == 1
        assert circuit.occurrence_of_index(index) == first
        assert circuit.occurrence_of_index(999) is None

    def test_latencies(self, ite_grammar):
        circuit = TaggerGenerator().generate(ite_grammar)
        assert circuit.index_latency == (
            circuit.detect_latency + circuit.encoder.latency
        )

    def test_pattern_bytes_counts_used_tokens(self, xmlrpc_grammar):
        circuit = TaggerGenerator().generate(xmlrpc_grammar)
        assert circuit.pattern_bytes() == 289

    def test_describe(self, ite_grammar):
        text = TaggerGenerator().generate(ite_grammar).describe()
        assert "7 tokenizers" in text


class TestOptions:
    def test_no_encoder(self, ite_grammar):
        options = TaggerOptions(encoder_style="none")
        circuit = TaggerGenerator(options).generate(ite_grammar)
        assert circuit.encoder is None
        assert "match_valid" not in circuit.netlist.outputs
        assert circuit.index_of(circuit.occurrences[0]) is None
        with pytest.raises(GenerationError):
            _ = circuit.index_latency

    def test_priority_encoder(self, xmlrpc_grammar):
        options = TaggerOptions(encoder_style="priority")
        circuit = TaggerGenerator(options).generate(xmlrpc_grammar)
        assert circuit.encoder.style == "mask"
        indices = list(circuit.encoder.index_of_input.values())
        assert len(set(indices)) == len(indices)

    def test_case_encoder(self, ite_grammar):
        options = TaggerOptions(encoder_style="case")
        circuit = TaggerGenerator(options).generate(ite_grammar)
        assert circuit.encoder.style == "case-chain"

    def test_unknown_encoder_rejected(self, ite_grammar):
        options = TaggerOptions(encoder_style="bogus")  # type: ignore[arg-type]
        with pytest.raises(GenerationError, match="unknown encoder"):
            TaggerGenerator(options).generate(ite_grammar)

    def test_no_detect_ports(self, ite_grammar):
        options = TaggerOptions(expose_detects=False, expose_accept=False)
        circuit = TaggerGenerator(options).generate(ite_grammar)
        assert not circuit.detect_ports
        assert "accept" not in circuit.netlist.outputs

    def test_decoder_options_flow_through(self, ite_grammar):
        options = TaggerOptions(
            decoder=DecoderOptions(nibble_sharing=False, replicas=2)
        )
        circuit = TaggerGenerator(options).generate(ite_grammar)
        circuit.netlist.validate()

    def test_custom_netlist_name(self, ite_grammar):
        circuit = TaggerGenerator().generate(ite_grammar, name="custom")
        assert circuit.netlist.name == "custom"


class TestDeterminism:
    def test_generation_is_deterministic(self, xmlrpc_grammar):
        from repro.grammar.examples import xmlrpc

        first = TaggerGenerator().generate(xmlrpc())
        second = TaggerGenerator().generate(xmlrpc())
        assert first.netlist.n_gates == second.netlist.n_gates
        assert first.netlist.n_registers == second.netlist.n_registers
        assert [str(o) for o in first.occurrences] == [
            str(o) for o in second.occurrences
        ]
