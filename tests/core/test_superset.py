"""The PDA → FSA collapse (Fig. 2): superset acceptance.

"Without implementing stacks, the parser is not a true CFG parser. On
the other hand, our design can parse a language that is a superset of
the grammar." (§3.1)
"""

import pytest

from repro.core.tagger import BehavioralTagger
from repro.errors import ParseError
from repro.software.ll1 import LL1Parser


@pytest.fixture(scope="module")
def tagger(request):
    from repro.grammar.examples import balanced_parens

    return BehavioralTagger(balanced_parens())


@pytest.fixture(scope="module")
def true_parser():
    from repro.grammar.examples import balanced_parens

    return LL1Parser(balanced_parens())


def _tagged(tagger, data):
    return [t.token for t in tagger.tag(data)]


class TestLanguageMembers:
    """Strings in the language: tagger and true parser agree."""

    @pytest.mark.parametrize(
        "data", [b"0", b"(0)", b"((0))", b"(((0)))", b"( ( 0 ) )"]
    )
    def test_balanced_fully_tagged(self, tagger, true_parser, data):
        tokens = _tagged(tagger, data)
        n_symbols = sum(1 for b in data if b in b"()0")
        assert len(tokens) == n_symbols
        parsed = true_parser.parse(data)
        assert [t.token for t in parsed.tokens] == tokens


class TestSupersetMembers:
    """Locally legal but unbalanced: only the tagger accepts."""

    @pytest.mark.parametrize("data", [b"((0)", b"(((0", b"(0"])
    def test_unbalanced_still_streams(self, tagger, true_parser, data):
        tokens = _tagged(tagger, data)
        n_symbols = sum(1 for b in data if b in b"()0")
        assert len(tokens) == n_symbols  # every token tagged
        with pytest.raises(ParseError):
            true_parser.parse(data)

    def test_extra_closers_restart_stream(self, tagger, true_parser):
        # "0))" : '0' ends a sentence; one ')' is in FOLLOW(0) and one
        # more in FOLLOW(')'), so the FSA keeps tagging. The true
        # parser rejects.
        tokens = _tagged(tagger, b"0))")
        assert tokens == ["0", ")", ")"]
        with pytest.raises(ParseError):
            true_parser.parse(b"0))")


class TestNonMembers:
    """Locally illegal transitions are caught even without a stack."""

    def test_close_after_open(self, tagger):
        # ')' never follows '(' in any sentential form.
        assert _tagged(tagger, b"()") == ["("]

    def test_zero_after_zero(self, tagger):
        # '0' may not follow '0' *within* a sentence; it can only start
        # a new one (loop-on-accept), which is itself legal streaming.
        tokens = tagger.tag(b"0 0")
        assert [t.token for t in tokens] == ["0", "0"]

    def test_if_then_else_illegal_transition(self):
        from repro.grammar.examples import if_then_else

        tagger = BehavioralTagger(if_then_else())
        # "then" cannot follow "if" (a C must intervene).
        tokens = [t.token for t in tagger.tag(b"if then")]
        assert tokens == ["if"]


class TestParallelDisambiguation:
    """"if multiple transitions takes place, all of them can be
    executed in parallel. In most cases, due to the context of the
    data, only the correct transition path will be allowed to
    continue." (§3.3)"""

    def test_nested_if_contexts(self):
        from repro.grammar.examples import if_then_else

        tagger = BehavioralTagger(if_then_else())
        data = b"if true then if false then go else stop else go"
        tokens = tagger.tag(data)
        assert [t.token for t in tokens] == [
            "if", "true", "then", "if", "false", "then",
            "go", "else", "stop", "else", "go",
        ]
        # With the stack collapsed, inner and outer "else" share one
        # occurrence tag — the superset behaviour, not an error.
        contexts = {t.context for t in tokens if t.token == "else"}
        assert len(contexts) == 1
