"""Vector wide-datapath engine ≡ compiled engine ≡ interpreted loop.

The vector engine (:mod:`repro.core.vectorscan`) replaces the compiled
per-byte loop with 8-byte-window stepping, dead-region skipping and
cross-flow batch lockstep — none of which may be observable: same
events, same order, same earliest-start lexemes, same §5.2 error
positions, same results under any chunking of the stream. This suite
pins all of that differentially against the compiled and interpreted
engines, on seeded random byte soup, XML-RPC workloads, and
TCP-reassembled netstack payloads.
"""

import random
import zlib
from dataclasses import replace

import pytest

from repro.apps.netstack.flows import TCPReassembler
from repro.apps.netstack.tracegen import TraceGenerator
from repro.apps.xmlrpc.messages import MethodCall, StringValue
from repro.apps.xmlrpc.workload import WorkloadGenerator
from repro.core.compiled import CompiledTagger
from repro.core.generator import TaggerOptions
from repro.core.tagger import BehavioralTagger
from repro.core.vectorscan import (
    NUMPY_AVAILABLE,
    BatchScanner,
    VectorTagger,
    capability,
)
from repro.core.wiring import WiringOptions
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc

GRAMMARS = {
    "ite": if_then_else,
    "xmlrpc": xmlrpc,
    "parens": balanced_parens,
}

#: Wiring corners the dense closure must specialize on, matching the
#: compiled engine's differential matrix.
VARIANTS = {
    "default": WiringOptions(),
    "no-dup": WiringOptions(context_duplication=False),
    "always": WiringOptions(start_mode="always"),
    "recovery": WiringOptions(error_recovery=True),
}
VARIANTS["no-longest"] = replace(
    WiringOptions(),
    tokenizer=replace(WiringOptions().tokenizer, longest_match=False),
)

ALPHABET = b"if then else got() <methodCall>param</int>intx 0123abc\t\n "


def _random_streams(seed: int, count: int, max_len: int = 200):
    rng = random.Random(seed)
    for _ in range(count):
        n = rng.randrange(0, max_len)
        yield bytes(rng.choice(ALPHABET) for _ in range(n))


def _random_chunks(data: bytes, rng: random.Random):
    """Split ``data`` at adversarial boundaries: single bytes, odd
    lengths (wide stepping's trailing-byte path), window-sized and
    MTU-sized runs — so splits land mid-token and mid-window."""
    i = 0
    while i < len(data):
        n = rng.choice((1, 3, 5, 7, 8, 9, 13, 64, 211, 1500))
        yield data[i : i + n]
        i += n


# ----------------------------------------------------------------------
# one-shot differential
# ----------------------------------------------------------------------
@pytest.mark.parametrize("gname", GRAMMARS)
@pytest.mark.parametrize("vname", VARIANTS)
def test_differential_random_streams(gname, vname):
    """scan() (events AND earliest starts) matches both other engines."""
    grammar = GRAMMARS[gname]()
    options = TaggerOptions(wiring=VARIANTS[vname])
    interpreted = BehavioralTagger(grammar, options, engine="interpreted")
    compiled = CompiledTagger(grammar, options)
    vector = VectorTagger(grammar, options)
    seed = zlib.crc32(f"vector/{gname}/{vname}".encode())
    for data in _random_streams(seed=seed, count=40):
        expected = compiled.scan(data)
        assert vector.scan(data) == expected
        assert expected == list(interpreted._scan(data, error_sink=None))


def test_vector_path_is_live_on_xmlrpc():
    """The reference grammar densifies: these tests must exercise the
    wide loop, not silently fall back to the compiled one."""
    if not NUMPY_AVAILABLE:
        pytest.skip("NumPy unavailable: fallback covered elsewhere")
    assert VectorTagger(xmlrpc()).vector_active


def test_xmlrpc_workload_events_and_tags():
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    vector = VectorTagger(grammar)
    data, _ = WorkloadGenerator(seed=41).stream(60)
    assert vector.events(data) == compiled.events(data)
    assert vector.tag(data) == compiled.tag(data)


def test_netstack_reassembled_payloads():
    """Payloads reassembled from an impaired TCP trace tag identically."""
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    vector = VectorTagger(grammar)
    payload, _ = WorkloadGenerator(seed=7).stream(12)
    gen = TraceGenerator(seed=7, mss=64, reorder_rate=0.2, duplicate_rate=0.1)
    packets = gen.impair(gen.flow_packets(payload))
    reassembler = TCPReassembler()
    cs, vs = compiled.stream(), vector.stream()
    for packet in packets:
        _key, chunk = reassembler.push(packet)
        if chunk:
            assert vs.feed(chunk) == cs.feed(chunk)
    assert vs.finish() == cs.finish()


# ----------------------------------------------------------------------
# streaming: chunking invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("trial", range(4))
def test_stream_chunking_invariance(trial):
    """Any split of the stream — mid-token, mid-window, single bytes —
    yields the one-shot result, matching the compiled session exactly
    chunk by chunk."""
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    vector = VectorTagger(grammar)
    data, _ = WorkloadGenerator(seed=100 + trial).stream(25)
    one_shot = compiled.events(data)
    rng = random.Random(trial)
    cs, vs = compiled.stream(), vector.stream()
    collected = []
    for chunk in _random_chunks(data, rng):
        got = vs.feed(chunk)
        assert got == cs.feed(chunk)
        collected += got
    collected += vs.finish()
    assert collected == one_shot


def test_odd_length_inputs():
    """Lengths around the 8-byte window edge hit the trailing-byte path."""
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    vector = VectorTagger(grammar)
    data, _ = WorkloadGenerator(seed=5).stream(10)
    for n in (0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 257):
        assert vector.scan(data[:n]) == compiled.scan(data[:n])


# ----------------------------------------------------------------------
# error recovery and dead-region skipping
# ----------------------------------------------------------------------
def test_error_recovery_positions():
    grammar = xmlrpc()
    options = TaggerOptions(wiring=WiringOptions(error_recovery=True))
    compiled = CompiledTagger(grammar, options)
    vector = VectorTagger(grammar, options)
    data, _ = WorkloadGenerator(seed=3).stream(5)
    corrupted = data[:300] + b"\xff\xfe<<>>broken" + data[300:]
    assert vector.events_and_errors(corrupted) == compiled.events_and_errors(
        corrupted
    )


def test_dead_region_is_skipped_and_exact():
    """Without recovery an unrecoverable error parks the machine in a
    dead state; the skip prefilter must fast-forward through it while
    producing byte-identical output."""
    grammar = xmlrpc()
    compiled = CompiledTagger(grammar)
    vector = VectorTagger(grammar)
    data, _ = WorkloadGenerator(seed=3).stream(4)
    poisoned = data + b"\x00\x01 dead region " * 4000 + data
    assert vector.events(poisoned) == compiled.events(poisoned)
    if vector.vector_active:
        assert vector.bytes_skipped > 0
        assert vector.bytes_skipped < vector.bytes_scanned


# ----------------------------------------------------------------------
# cross-flow batch stepping
# ----------------------------------------------------------------------
def _bulk_doc() -> bytes:
    payload = ("Qx7" * 700)[:2048]
    return MethodCall(method="buy", params=(StringValue(payload),)).encode()


@pytest.mark.parametrize("recovery", [False, True])
def test_batch_lockstep_parity(recovery):
    """feed_many over ≥min_flows distinct flows (the lockstep kernel)
    equals per-flow compiled feeding, events and error positions both."""
    grammar = xmlrpc()
    options = TaggerOptions(
        wiring=WiringOptions(error_recovery=recovery)
    )
    vector = VectorTagger(grammar, options)
    compiled = CompiledTagger(grammar, options)
    scanner = BatchScanner(vector, min_flows=4)
    rng = random.Random(17)
    flows = []
    for i in range(8):
        data, _ = WorkloadGenerator(seed=200 + i).stream(8)
        if i % 3 == 1:
            data = data[:150] + b"\xfe broken" + data[150:]
        if i % 3 == 2:
            data = _bulk_doc() * 3
        flows.append(data)
    sessions = [scanner.session() for _ in flows]
    reference = [compiled.stream() for _ in flows]
    outs = [[] for _ in flows]
    offsets = [0] * len(flows)
    while any(o < len(f) for o, f in zip(offsets, flows)):
        batch_sessions, batch_chunks, indices = [], [], []
        for i, flow in enumerate(flows):
            if offsets[i] < len(flow):
                n = rng.choice((64, 333, 1500, 4096))
                batch_sessions.append(sessions[i])
                batch_chunks.append(flow[offsets[i] : offsets[i] + n])
                indices.append(i)
                offsets[i] += n
        for i, events in zip(
            indices, scanner.feed_many(batch_sessions, batch_chunks)
        ):
            outs[i].extend(events)
    for i, flow in enumerate(flows):
        expected = []
        session = reference[i]
        for j in range(0, len(flow), 777):
            expected += session.feed(flow[j : j + 777])
        assert outs[i] + sessions[i].finish() == expected + session.finish()
        assert sessions[i].errors == session.errors
    if vector.vector_active and NUMPY_AVAILABLE:
        assert scanner.batched > 0


def test_batch_below_crossover_dispatches_per_flow():
    vector = VectorTagger(xmlrpc())
    compiled = CompiledTagger(xmlrpc())
    scanner = BatchScanner(vector, min_flows=64)
    data, _ = WorkloadGenerator(seed=1).stream(5)
    sessions = [scanner.session(), scanner.session()]
    outs = scanner.feed_many(sessions, [data, data])
    assert scanner.fallback == 2 and scanner.batched == 0
    expected = compiled.events(data)
    for out, session in zip(outs, sessions):
        assert out + session.finish() == expected


# ----------------------------------------------------------------------
# fallback, construction, pickling
# ----------------------------------------------------------------------
def test_fallback_without_tables_is_exact():
    """With the dense tables gone (NumPy absent, oversized closure) the
    engine must degrade to the compiled loop transparently."""
    grammar = xmlrpc()
    vector = VectorTagger(grammar)
    vector._vt = None
    assert not vector.vector_active
    compiled = CompiledTagger(grammar)
    data, _ = WorkloadGenerator(seed=8).stream(15)
    assert vector.scan(data) == compiled.scan(data)
    scanner = BatchScanner(vector, min_flows=1)
    sessions = [scanner.session(), scanner.session()]
    outs = scanner.feed_many(sessions, [data, data])
    expected = compiled.events(data)
    for out, session in zip(outs, sessions):
        assert out + session.finish() == expected


def test_behavioral_tagger_engine_selection():
    tagger = BehavioralTagger(xmlrpc(), engine="vector")
    assert isinstance(tagger.compiled, VectorTagger)
    data, _ = WorkloadGenerator(seed=2).stream(5)
    reference = BehavioralTagger(xmlrpc(), engine="compiled")
    assert tagger.tag(data) == reference.tag(data)


def test_pickle_roundtrip_preserves_engine():
    import pickle

    vector = VectorTagger(xmlrpc())
    clone = pickle.loads(pickle.dumps(vector))
    assert type(clone) is VectorTagger
    data, _ = WorkloadGenerator(seed=4).stream(5)
    assert clone.events(data) == vector.events(data)


def test_capability_shape():
    flags = capability()
    assert set(flags) == {"numpy", "disabled_by_env", "width"}
    assert flags["width"] == 8
    assert flags["numpy"] is NUMPY_AVAILABLE
