"""Unified engine-capability reporting (`repro.core.capabilities`).

One helper feeds every surface that advertises acceleration status —
CLI ``--version`` / ``capabilities``, the admin ``/stats`` endpoint,
service snapshots — so the shape is pinned here once.
"""

import pytest

from repro.core.capabilities import (
    ENGINES,
    capability_summary,
    describe_capabilities,
    engine_capabilities,
)


def test_engine_list_is_the_ladder():
    assert ENGINES == ("interpreted", "compiled", "vector", "native")


def test_engine_capabilities_shape():
    caps = engine_capabilities()
    assert set(caps) == {"engines", "vector", "native"}
    assert caps["engines"] == list(ENGINES)
    assert set(caps["vector"]) == {"numpy", "disabled_by_env", "width"}
    assert set(caps["native"]) == {
        "native",
        "disabled_by_env",
        "compiler",
        "source",
    }


def test_engine_capabilities_names_the_selected_engine():
    caps = engine_capabilities("vector")
    assert caps["name"] == "vector"
    with pytest.raises(ValueError):
        engine_capabilities("turbo")


def test_describe_capabilities_lists_every_engine():
    text = describe_capabilities()
    for line in ("vector:", "native:"):
        assert line in text
    assert isinstance(capability_summary(), str)
    assert "vector:" in capability_summary()


def test_disable_env_is_reported(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
    caps = engine_capabilities()
    assert caps["native"]["disabled_by_env"] is True
    assert caps["native"]["native"] is False
    assert "disabled" in capability_summary()
