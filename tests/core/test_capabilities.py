"""Unified engine-capability reporting (`repro.core.capabilities`).

One helper feeds every surface that advertises acceleration status —
CLI ``--version`` / ``capabilities``, the admin ``/stats`` endpoint,
service snapshots — so the shape is pinned here once.
"""

import pytest

from repro.core.capabilities import (
    ENGINE_CHOICES,
    ENGINES,
    capability_summary,
    describe_capabilities,
    engine_capabilities,
    resolve_engine,
)


def test_engine_list_is_the_ladder():
    assert ENGINES == ("interpreted", "compiled", "vector", "native")


def test_engine_capabilities_shape():
    caps = engine_capabilities()
    assert set(caps) == {"engines", "vector", "native"}
    assert caps["engines"] == list(ENGINES)
    assert set(caps["vector"]) == {"numpy", "disabled_by_env", "width"}
    assert set(caps["native"]) == {
        "native",
        "disabled_by_env",
        "compiler",
        "source",
    }


def test_engine_capabilities_names_the_selected_engine():
    caps = engine_capabilities("vector")
    assert caps["name"] == "vector"
    with pytest.raises(ValueError):
        engine_capabilities("turbo")


def test_describe_capabilities_lists_every_engine():
    text = describe_capabilities()
    for line in ("vector:", "native:"):
        assert line in text
    assert isinstance(capability_summary(), str)
    assert "vector:" in capability_summary()


def test_disable_env_is_reported(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
    caps = engine_capabilities()
    assert caps["native"]["disabled_by_env"] is True
    assert caps["native"]["native"] is False
    assert "disabled" in capability_summary()


# ----------------------------------------------------------------------
# resolve_engine: the one front door for every --engine surface
# ----------------------------------------------------------------------
def test_resolve_engine_passes_canonical_names_through():
    for name in ENGINES:
        assert resolve_engine(name) == name


def test_resolve_engine_choices_cover_aliases_and_auto():
    assert "auto" in ENGINE_CHOICES
    assert resolve_engine("interp") == "interpreted"
    for choice in ENGINE_CHOICES:
        assert resolve_engine(choice) in ENGINES


def test_resolve_engine_auto_picks_a_dense_available_engine():
    resolved = resolve_engine("auto")
    assert resolved in ("native", "vector", "compiled")
    # auto is streaming-safe by construction.
    assert resolve_engine("auto", streaming=True) == resolved


def test_resolve_engine_auto_respects_disable_env(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
    assert resolve_engine("auto") in ("vector", "compiled")
    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    assert resolve_engine("auto") == "compiled"


def test_resolve_engine_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("turbo")


def test_resolve_engine_streaming_rejects_interpreted():
    with pytest.raises(ValueError, match="incremental"):
        resolve_engine("interpreted", streaming=True)
    with pytest.raises(ValueError, match="incremental"):
        resolve_engine("interp", streaming=True)
