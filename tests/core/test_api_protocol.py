"""The unified tagger surface: TokenTagger protocol, StreamSession
contract, BufferedSession fallback, and the deprecated aliases."""

import pytest

from repro.apps.netstack.tracegen import TraceGenerator
from repro.apps.netstack.wrapper import TaggingWrapper
from repro.apps.xmlrpc import ContentBasedRouter, MethodCall
from repro.apps.xmlrpc.router import RouterSession
from repro.core.api import BufferedSession, StreamSession, TokenTagger
from repro.core.compiled import CompiledStream, CompiledTagger
from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.core.wiring import WiringOptions
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.errors import BackendError
from repro.grammar.examples import xmlrpc

STREAM = (
    b"<methodCall><methodName>buy</methodName>"
    b"<params><param><i4>17</i4></param></params></methodCall> "
)


@pytest.fixture(scope="module")
def grammar():
    return xmlrpc()


@pytest.fixture(scope="module")
def circuit(grammar):
    return TaggerGenerator().generate(grammar)


# ----------------------------------------------------------------------
# TokenTagger protocol
# ----------------------------------------------------------------------
def test_all_taggers_satisfy_protocol(grammar, circuit):
    taggers = [
        BehavioralTagger(grammar),
        BehavioralTagger(grammar, engine="interpreted"),
        CompiledTagger(grammar),
        GateLevelTagger(circuit),
    ]
    for tagger in taggers:
        assert isinstance(tagger, TokenTagger), type(tagger).__name__


def test_protocol_methods_agree(grammar, circuit):
    """events/tag answer the same question through every engine."""
    reference = BehavioralTagger(grammar)
    ref_events = reference.events(STREAM)
    ref_tokens = reference.tag(STREAM)
    for tagger in (
        BehavioralTagger(grammar, engine="interpreted"),
        CompiledTagger(grammar),
        GateLevelTagger(circuit),
    ):
        assert tagger.events(STREAM) == ref_events
        assert tagger.tag(STREAM) == ref_tokens


def test_events_and_errors_shape(grammar):
    recovery = TaggerOptions(wiring=WiringOptions(error_recovery=True))
    recovering = TaggerGenerator(recovery).generate(grammar)
    for tagger in (
        BehavioralTagger(grammar, recovery),
        CompiledTagger(grammar, recovery),
        GateLevelTagger(recovering),
    ):
        events, errors = tagger.events_and_errors(STREAM)
        assert events == tagger.events(STREAM)
        assert errors == []


def test_gate_level_errors_need_recovery_pin(circuit):
    """Without error_recovery wiring there is no parse_error pin to
    observe; the unified API refuses rather than silently lying."""
    with pytest.raises(ValueError):
        GateLevelTagger(circuit).events_and_errors(STREAM)


# ----------------------------------------------------------------------
# StreamSession contract
# ----------------------------------------------------------------------
def test_stream_session_implementations(grammar, circuit):
    """Every engine answers .stream() with a StreamSession; compiled
    engines with an incremental one, the rest with BufferedSession."""
    assert isinstance(BehavioralTagger(grammar).stream(), CompiledStream)
    assert isinstance(CompiledTagger(grammar).stream(), CompiledStream)
    assert isinstance(
        BehavioralTagger(grammar, engine="interpreted").stream(),
        BufferedSession,
    )
    assert isinstance(GateLevelTagger(circuit).stream(), BufferedSession)
    assert isinstance(ContentBasedRouter().stream(), RouterSession)
    for session in (
        CompiledTagger(grammar).stream(),
        ContentBasedRouter().stream(),
        TaggingWrapper(),
    ):
        assert isinstance(session, StreamSession)


def test_buffered_session_matches_batch(grammar, circuit):
    """BufferedSession is contract-true for non-incremental engines:
    feed in chunks, finish returns the whole-stream events."""
    gate = GateLevelTagger(circuit)
    session = gate.stream()
    for i in range(0, len(STREAM), 16):
        assert session.feed(STREAM[i : i + 16]) == []
    assert session.finish() == gate.events(STREAM)


def test_context_manager_auto_finishes(grammar):
    tagger = CompiledTagger(grammar)
    with tagger.stream() as session:
        events = session.feed(STREAM)
    assert session.finished
    assert session.tail is not None
    assert events + session.tail == tagger.events(STREAM)


def test_context_manager_respects_explicit_finish(grammar):
    tagger = CompiledTagger(grammar)
    with tagger.stream() as session:
        session.feed(STREAM)
        tail = session.finish()
    assert session.tail is None  # finish() was explicit; no auto-flush
    assert tail == []or tail  # tail may be empty for this stream


def test_finished_session_rejects_feed(grammar):
    session = CompiledTagger(grammar).stream()
    session.feed(STREAM)
    session.finish()
    with pytest.raises(BackendError):
        session.feed(b"more")
    with pytest.raises(BackendError):
        session.finish()


def test_wrapper_is_a_stream_session():
    trace = TraceGenerator(mss=32).trace([MethodCall("buy").encode()])
    with TaggingWrapper() as wrapper:
        for packet in trace:
            wrapper.feed_packet(packet)
    results = wrapper.tail
    assert results is not None
    assert results[0].messages[0].port == 1


# Deprecated-alias warning coverage lives in one place:
# tests/core/test_deprecations.py (the matrix over every session and
# engine). Nothing else in the repo calls the aliases.
