"""Wide-datapath tagger (§5.2): equivalence and scaling structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tagger import BehavioralTagger
from repro.core.wide import (
    WideGateLevelTagger,
    WideTaggerCircuit,
    WideTaggerGenerator,
)
from repro.errors import GenerationError
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc


def _key(events):
    return sorted((e.end, str(e.occurrence)) for e in events)


@pytest.fixture(scope="module")
def ite_wide():
    grammar = if_then_else()
    return {
        W: WideGateLevelTagger(WideTaggerGenerator(W).generate(grammar))
        for W in (1, 2, 4)
    }, BehavioralTagger(grammar)


class TestEquivalence:
    @pytest.mark.parametrize("lanes", [1, 2, 4])
    @pytest.mark.parametrize(
        "data",
        [
            b"if true then go else stop",
            b"go",
            b"",
            b"   stop",
            b"iffy go gone",
            b"if true then if false then go else go else stop",
        ],
    )
    def test_matches_byte_serial(self, ite_wide, lanes, data):
        wides, behavioral = ite_wide
        assert _key(wides[lanes].events(data)) == _key(behavioral.events(data))

    @pytest.mark.parametrize("lanes", [2, 4, 8])
    def test_xmlrpc_message(self, lanes, xmlrpc_message):
        grammar = xmlrpc()
        wide = WideGateLevelTagger(WideTaggerGenerator(lanes).generate(grammar))
        behavioral = BehavioralTagger(grammar)
        assert _key(wide.events(xmlrpc_message)) == _key(
            behavioral.events(xmlrpc_message)
        )

    def test_tokens_entirely_within_one_beat(self):
        """Several 1-char tokens chained inside a single beat."""
        grammar = balanced_parens()
        wide = WideGateLevelTagger(WideTaggerGenerator(8).generate(grammar))
        behavioral = BehavioralTagger(grammar)
        for data in (b"((0))", b"(0)", b"0"):
            assert _key(wide.events(data)) == _key(behavioral.events(data))

    def test_unaligned_tail(self, ite_wide):
        wides, behavioral = ite_wide
        data = b"go else stop"  # 12 bytes: ragged for W=8 but fine for 4
        assert _key(wides[4].events(data)) == _key(behavioral.events(data))

    @given(
        data=st.text(alphabet="gost p", min_size=0, max_size=13).map(
            lambda s: s.encode()
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_random_equivalence_w4(self, ite_wide, data):
        wides, behavioral = ite_wide
        assert _key(wides[4].events(data)) == _key(behavioral.events(data))


class TestStructure:
    def test_lane_count_validated(self):
        with pytest.raises(GenerationError):
            WideTaggerGenerator(0)

    def test_ports_per_lane(self, ite_wide):
        wides, _ = ite_wide
        circuit: WideTaggerCircuit = wides[4].circuit
        assert len(circuit.detect_ports) == len(circuit.occurrences) * 4
        inputs = {net.name for net in circuit.netlist.inputs}
        assert "l0_data0" in inputs and "l3_valid" in inputs

    def test_depth_grows_with_lanes(self):
        from repro.rtl.analysis import max_logic_depth

        grammar = if_then_else()
        depth1 = max_logic_depth(WideTaggerGenerator(1).generate(grammar).netlist)
        depth4 = max_logic_depth(WideTaggerGenerator(4).generate(grammar).netlist)
        assert depth4 > depth1

    def test_bandwidth_tradeoff(self):
        """Frequency falls but net bandwidth rises with lane count."""
        from repro.fpga import get_device, techmap
        from repro.fpga.timing import analyze_timing

        grammar = if_then_else()
        device = get_device("virtex4-lx200")
        results = {}
        for lanes in (1, 4):
            circuit = WideTaggerGenerator(lanes).generate(grammar)
            timing = analyze_timing(techmap(circuit.netlist), device)
            results[lanes] = (
                timing.frequency_mhz,
                timing.frequency_mhz * 8 * lanes,
            )
        assert results[4][0] < results[1][0]  # slower clock
        assert results[4][1] > results[1][1]  # more bandwidth
