"""§5.2 error detection and recovery, behavioral == gate-level."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.core.wiring import WiringOptions
from repro.grammar.examples import if_then_else, xmlrpc

RECOVERY = TaggerOptions(wiring=WiringOptions(error_recovery=True))


@pytest.fixture(scope="module")
def pair():
    grammar = if_then_else()
    behavioral = BehavioralTagger(grammar, RECOVERY)
    gate = GateLevelTagger(TaggerGenerator(RECOVERY).generate(grammar))
    return behavioral, gate


class TestRecoverySemantics:
    def test_clean_input_no_errors(self, pair):
        behavioral, gate = pair
        events, errors = behavioral.events_and_errors(
            b"if true then go else stop"
        )
        assert errors == []
        assert len(events) == 6

    def test_parsing_resumes_after_junk(self, pair):
        behavioral, _gate = pair
        events, errors = behavioral.events_and_errors(
            b"if true ??? go stop"
        )
        tokens = [e.occurrence.terminal.name for e in events]
        # 'go' and 'stop' recovered after the junk span.
        assert tokens == ["if", "true", "go", "stop"]
        assert errors  # the junk was reported

    def test_error_positions_point_at_junk(self, pair):
        behavioral, _gate = pair
        _events, errors = behavioral.events_and_errors(b"go !! stop")
        assert errors == [4, 5]

    def test_without_recovery_stream_stays_dead(self):
        grammar = if_then_else()
        plain = BehavioralTagger(grammar)
        tokens = [t.token for t in plain.tag(b"if true ??? go stop")]
        # no recovery: 'go'/'stop' were never re-armed mid-stream
        assert tokens == ["if", "true"]

    def test_requires_option(self):
        plain = BehavioralTagger(if_then_else())
        with pytest.raises(ValueError):
            plain.events_and_errors(b"go")

    def test_gate_requires_option(self):
        gate = GateLevelTagger(TaggerGenerator().generate(if_then_else()))
        with pytest.raises(ValueError):
            gate.events_and_errors(b"go")

class TestHardwareEquivalence:
    @pytest.mark.parametrize(
        "data",
        [
            b"if true ??? go stop",
            b"go !! stop",
            b"##",
            b"if true then go else stop",
            b"?? if true then go else stop ??",
            b"go",
            b"",
        ],
    )
    def test_events_and_errors_match(self, pair, data):
        behavioral, gate = pair
        gate_events, gate_errors = gate.events_and_errors(data)
        events, errors = behavioral.events_and_errors(data)
        assert gate_events == events, data
        assert gate_errors == errors, data

    @given(
        data=st.text(alphabet="gostp?! ", min_size=0, max_size=16).map(
            lambda s: s.encode()
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_random_junk_equivalence(self, pair, data):
        behavioral, gate = pair
        gate_events, gate_errors = gate.events_and_errors(data)
        events, errors = behavioral.events_and_errors(data)
        assert gate_events == events
        assert gate_errors == errors


class TestXmlRpcRecovery:
    def test_corrupt_message_resyncs_on_next(self):
        grammar = xmlrpc()
        behavioral = BehavioralTagger(grammar, RECOVERY)
        good = (
            b"<methodCall><methodName>buy</methodName>"
            b"<params></params></methodCall>"
        )
        corrupted = good[:20] + b"@@@@" + good
        events, errors = behavioral.events_and_errors(corrupted)
        assert errors  # corruption detected
        closers = [
            e for e in events if e.occurrence.terminal.name == "</methodCall>"
        ]
        assert len(closers) == 1  # the second message parsed completely
