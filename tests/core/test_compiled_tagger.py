"""Compiled table-driven engine ≡ interpreted loop ≡ gate-level netlist.

The compiled engine (:mod:`repro.core.compiled`) must be *bit-exact*
with the interpreted reference: same events, same order, same
earliest-start lexemes, same §5.2 error positions — across wiring
variants including the longest-match and error-recovery corners, on
seeded random byte soup as well as structured inputs. A three-way
check against the gate-level simulation pins all engines to the
hardware semantics.
"""

import random
import zlib
from dataclasses import replace

import pytest

from repro.core.compiled import CompiledTagger
from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.core.wiring import WiringOptions
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc

GRAMMARS = {
    "ite": if_then_else,
    "xmlrpc": xmlrpc,
    "parens": balanced_parens,
}

#: Wiring corners the tables specialize on: context collapse, start
#: mode, accept looping, Fig. 7 longest-match on/off, keyword
#: boundary, §5.2 recovery.
VARIANTS = {
    "default": WiringOptions(),
    "no-dup": WiringOptions(context_duplication=False),
    "always": WiringOptions(start_mode="always"),
    "no-loop": WiringOptions(loop_on_accept=False),
    "recovery": WiringOptions(error_recovery=True),
}
VARIANTS["no-longest"] = replace(
    WiringOptions(),
    tokenizer=replace(WiringOptions().tokenizer, longest_match=False),
)
VARIANTS["boundary"] = replace(
    WiringOptions(),
    tokenizer=replace(WiringOptions().tokenizer, keyword_boundary=True),
)

#: Byte soup biased toward token fragments, so random streams exercise
#: partial matches, overlaps and delimiter arming rather than pure noise.
ALPHABET = b"if then else got() <methodCall>param</int>intx 0123abc\t\n "


def _random_streams(seed: int, count: int, max_len: int = 200):
    rng = random.Random(seed)
    for _ in range(count):
        n = rng.randrange(0, max_len)
        yield bytes(rng.choice(ALPHABET) for _ in range(n))


@pytest.mark.parametrize("gname", GRAMMARS)
@pytest.mark.parametrize("vname", VARIANTS)
def test_differential_random_streams(gname, vname):
    """Events AND earliest starts match the interpreted loop exactly."""
    grammar = GRAMMARS[gname]()
    options = TaggerOptions(wiring=VARIANTS[vname])
    interpreted = BehavioralTagger(grammar, options, engine="interpreted")
    compiled = CompiledTagger(grammar, options)
    seed = zlib.crc32(f"{gname}/{vname}".encode())
    for data in _random_streams(seed=seed, count=60):
        assert compiled.scan(data) == list(
            interpreted._scan(data, error_sink=None)
        )


@pytest.mark.parametrize("gname", GRAMMARS)
def test_three_way_gate_level(gname):
    """Compiled == interpreted == cycle-accurate netlist simulation."""
    grammar = GRAMMARS[gname]()
    circuit = TaggerGenerator().generate(grammar)
    gate = GateLevelTagger(circuit)
    interpreted = BehavioralTagger(grammar, engine="interpreted")
    compiled = CompiledTagger(grammar)
    for data in _random_streams(seed=99, count=8, max_len=80):
        events = compiled.events(data)
        assert events == interpreted.events(data)
        assert events == gate.events(data)


@pytest.mark.parametrize("gname", GRAMMARS)
def test_error_recovery_positions(gname):
    """§5.2 re-arm positions are bit-exact, not just the events."""
    grammar = GRAMMARS[gname]()
    options = TaggerOptions(wiring=WiringOptions(error_recovery=True))
    interpreted = BehavioralTagger(grammar, options, engine="interpreted")
    compiled = CompiledTagger(grammar, options)
    for data in _random_streams(seed=7, count=40):
        expected_errors: list = []
        expected = list(interpreted._scan(data, error_sink=expected_errors))
        events, errors = compiled.events_and_errors(data)
        assert events == [event for event, _start in expected]
        assert errors == expected_errors


@pytest.mark.parametrize("gname", GRAMMARS)
def test_tag_lexemes_equal(gname):
    """Full TaggedToken streams (lexeme slices included) are identical."""
    grammar = GRAMMARS[gname]()
    interpreted = BehavioralTagger(grammar, engine="interpreted")
    compiled = CompiledTagger(grammar)
    for data in _random_streams(seed=23, count=30):
        assert compiled.tag(data) == interpreted.tag(data)


@pytest.mark.parametrize("gname", GRAMMARS)
def test_streaming_chunk_split_invariance(gname):
    """Any chunking of the stream yields the one-shot result."""
    grammar = GRAMMARS[gname]()
    compiled = CompiledTagger(grammar)
    rng = random.Random(4242)
    for data in _random_streams(seed=17, count=25, max_len=300):
        whole = compiled.scan(data)
        session = compiled.stream()
        chunked = []
        i = 0
        while i < len(data):
            k = rng.randrange(1, 17)
            chunked += session.feed_scan(data[i : i + k])
            i += k
        chunked += session.finish_scan()
        assert chunked == whole


def test_feed_finish_api():
    """The tagger-level streaming convenience: absolute positions,
    boundary-held events, session reset on finish."""
    grammar = if_then_else()
    tagger = CompiledTagger(grammar)
    data = b"if true then go"
    expected = tagger.events(data)
    got = tagger.feed(b"if tr")
    got += tagger.feed(b"ue then go")
    got += tagger.finish()
    assert got == expected
    # finish() reset the default session: the next stream starts at 0
    assert tagger.feed(data) + tagger.finish() == expected


def test_behavioral_default_engine_is_compiled():
    grammar = xmlrpc()
    tagger = BehavioralTagger(grammar)
    assert tagger.compiled is not None
    legacy = BehavioralTagger(grammar, engine="interpreted")
    assert legacy.compiled is None
    data = b"<methodCall><methodName>buy</methodName></methodCall>"
    assert tagger.events(data) == legacy.events(data)


def test_tables_shared_across_taggers():
    """One (grammar, wiring) pair -> one compiled table set."""
    grammar = xmlrpc()
    first = CompiledTagger(grammar)
    second = CompiledTagger(grammar)
    assert first.tables is second.tables
    assert first.plan is second.plan
    # distinct wiring -> distinct tables
    other = CompiledTagger(
        grammar, TaggerOptions(wiring=WiringOptions(start_mode="always"))
    )
    assert other.tables is not first.tables
