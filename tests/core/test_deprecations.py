"""The PR 2 deprecation contract, pinned so it can't silently rot:
``push_frame`` / ``push_packet`` / ``error_positions`` must emit
``DeprecationWarning`` — and still delegate correctly — on every
implementation that carries them."""

import pytest

from repro.apps.netstack.tracegen import TraceGenerator
from repro.apps.netstack.wrapper import TaggingWrapper
from repro.apps.xmlrpc import ContentBasedRouter, MethodCall
from repro.core.api import BufferedSession
from repro.core.compiled import CompiledTagger
from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.core.wiring import WiringOptions

MESSAGE = (
    b"<methodCall><methodName>buy</methodName>"
    b"<params><param><i4>17</i4></param></params></methodCall> "
)


@pytest.fixture(scope="module")
def recovery_options():
    return TaggerOptions(wiring=WiringOptions(error_recovery=True))


@pytest.fixture(scope="module")
def recovery_circuit(xmlrpc_grammar, recovery_options):
    return TaggerGenerator(recovery_options).generate(xmlrpc_grammar)


# ----------------------------------------------------------------------
# push_frame: deprecated alias of feed on EVERY StreamSession
# ----------------------------------------------------------------------
def _sessions(grammar, circuit):
    return [
        ("CompiledStream", CompiledTagger(grammar).stream()),
        ("RouterSession", ContentBasedRouter().stream()),
        ("BufferedSession", BufferedSession(GateLevelTagger(circuit))),
        ("TaggingWrapper", TaggingWrapper()),
    ]


def test_push_frame_warns_on_every_stream_session(
    xmlrpc_grammar, recovery_circuit
):
    for name, session in _sessions(xmlrpc_grammar, recovery_circuit):
        with pytest.warns(DeprecationWarning, match=rf"{name}.push_frame"):
            session.push_frame(b"")


def test_push_frame_delegates_like_feed(xmlrpc_grammar, recovery_circuit):
    """Alias and canonical method produce identical results chunk by
    chunk on every session implementation."""
    for name, via_alias in _sessions(xmlrpc_grammar, recovery_circuit):
        _name, via_feed = next(
            pair
            for pair in _sessions(xmlrpc_grammar, recovery_circuit)
            if pair[0] == name
        )
        for start in range(0, len(MESSAGE), 16):
            chunk = MESSAGE[start : start + 16]
            with pytest.warns(DeprecationWarning):
                got = via_alias.push_frame(chunk)
            assert got == via_feed.feed(chunk), name


def test_push_frame_wrapper_still_counts_malformed():
    wrapper = TaggingWrapper()
    with pytest.warns(DeprecationWarning, match="push_frame"):
        wrapper.push_frame(b"garbage")
    assert wrapper.malformed == 1


# ----------------------------------------------------------------------
# push_packet (packet-level sessions)
# ----------------------------------------------------------------------
def test_push_packet_warns_and_delegates():
    trace = TraceGenerator(mss=32).trace([MethodCall("buy").encode()])
    wrapper = TaggingWrapper()
    for packet in trace:
        with pytest.warns(DeprecationWarning, match="push_packet"):
            wrapper.push_packet(packet)
    assert wrapper.results()[0].messages[0].port == 1


# ----------------------------------------------------------------------
# error_positions: deprecated alias on every tagger engine
# ----------------------------------------------------------------------
def _taggers(grammar, options, circuit):
    return [
        ("BehavioralTagger", BehavioralTagger(grammar, options)),
        (
            "BehavioralTagger",
            BehavioralTagger(grammar, options, engine="interpreted"),
        ),
        ("CompiledTagger", CompiledTagger(grammar, options)),
        ("GateLevelTagger", GateLevelTagger(circuit)),
    ]


def test_error_positions_warns_on_every_engine(
    xmlrpc_grammar, recovery_options, recovery_circuit
):
    # Junk ahead of a valid message: recovery resynchronizes and
    # reports the two leading bytes it skipped.
    junk = b"!!" + MESSAGE
    for name, tagger in _taggers(
        xmlrpc_grammar, recovery_options, recovery_circuit
    ):
        with pytest.warns(
            DeprecationWarning, match=rf"{name}.error_positions"
        ):
            positions = tagger.error_positions(junk)
        assert positions == tagger.events_and_errors(junk)[1], name
        assert positions == [1, 2], f"{name} should report the '!!' junk"
