"""Every example script must run cleanly (they are living docs)."""

import pathlib
import runpy
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch, tmp_path):
    argv = [str(script)]
    if script.stem == "vhdl_export":
        argv.append(str(tmp_path / "out.vhd"))
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.stem} produced no output"


def test_example_inventory():
    """The README promises at least these examples."""
    names = {path.stem for path in _EXAMPLES}
    assert {
        "quickstart",
        "xmlrpc_router",
        "balanced_parens",
        "nids_filter",
        "vhdl_export",
    } <= names
    assert len(names) >= 7
