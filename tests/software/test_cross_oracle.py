"""Three-way oracle: LL(1) == recursive descent == hardware tagger.

On conforming input the tagged (token, occurrence, span) stream must
be identical across the table-driven parser, the recursive-descent
parser and the hardware-semantics behavioral tagger. Random valid
workloads are generated with hypothesis.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.xmlrpc import WorkloadGenerator
from repro.core.tagger import BehavioralTagger
from repro.grammar.examples import if_then_else, xmlrpc
from repro.software.ll1 import LL1Parser
from repro.software.recursive_descent import RecursiveDescentParser


def _key(tokens):
    return [(t.token, t.occurrence, t.start, t.end, t.lexeme) for t in tokens]


@pytest.fixture(scope="module")
def xmlrpc_oracles():
    grammar = xmlrpc()
    return (
        LL1Parser(grammar),
        RecursiveDescentParser(grammar),
        BehavioralTagger(grammar),
    )


class TestFixedSentences:
    def test_message(self, xmlrpc_oracles, xmlrpc_message):
        ll1, rd, hw = xmlrpc_oracles
        expected = _key(ll1.parse(xmlrpc_message).tokens)
        assert _key(rd.parse(xmlrpc_message)) == expected
        assert _key(hw.tag(xmlrpc_message)) == expected

    def test_ite(self):
        grammar = if_then_else()
        data = b"if true then if false then go else go else stop"
        expected = _key(LL1Parser(grammar).parse(data).tokens)
        assert _key(RecursiveDescentParser(grammar).parse(data)) == expected
        assert _key(BehavioralTagger(grammar).tag(data)) == expected


# Random sentences of the if-then-else grammar via a tiny generator.
@st.composite
def ite_sentences(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        return draw(st.sampled_from([b"go", b"stop"]))
    condition = draw(st.sampled_from([b"true", b"false"]))
    left = draw(ite_sentences(depth=depth + 1))
    right = draw(ite_sentences(depth=depth + 1))
    return b"if " + condition + b" then " + left + b" else " + right


@given(sentence=ite_sentences())
@settings(max_examples=60, deadline=None)
def test_ite_random_sentences(sentence):
    grammar = if_then_else()
    expected = _key(LL1Parser(grammar).parse(sentence).tokens)
    assert _key(RecursiveDescentParser(grammar).parse(sentence)) == expected
    assert _key(BehavioralTagger(grammar).tag(sentence)) == expected


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_xmlrpc_random_workload(seed):
    grammar = xmlrpc()
    generator = WorkloadGenerator(seed=seed, max_params=3, max_depth=1)
    call, _port, _decoy = generator.message()
    data = call.encode()
    expected = _key(LL1Parser(grammar).parse(data).tokens)
    assert _key(RecursiveDescentParser(grammar).parse(data)) == expected
    assert _key(BehavioralTagger(grammar).tag(data)) == expected


def test_multi_message_stream_oracle(xmlrpc_oracles, xmlrpc_stream):
    ll1, _rd, hw = xmlrpc_oracles
    stream_tokens = []
    for result in ll1.parse_stream(xmlrpc_stream):
        stream_tokens.extend(result.tokens)
    assert [
        (t.token, t.occurrence, t.lexeme) for t in stream_tokens
    ] == [(t.token, t.occurrence, t.lexeme) for t in hw.tag(xmlrpc_stream)]
