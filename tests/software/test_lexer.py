"""Software lexers: maximal munch and context-sensitive variants."""

import pytest

from repro.errors import ParseError
from repro.grammar.lexspec import LexSpec
from repro.software.lexer import ContextSensitiveLexer, Lexer


@pytest.fixture()
def spec():
    s = LexSpec()
    s.define("WORD", "[a-z]+")
    s.define("NUM", "[0-9]+")
    s.define_literal("==")
    s.define_literal("=")
    return s


class TestMaximalMunch:
    def test_basic_tokenization(self, spec):
        tokens = Lexer(spec).tokenize(b"abc 42")
        assert [(t.name, t.lexeme) for t in tokens] == [
            ("WORD", b"abc"),
            ("NUM", b"42"),
        ]

    def test_longest_match_wins(self, spec):
        tokens = Lexer(spec).tokenize(b"==")
        assert [t.name for t in tokens] == ["=="]

    def test_tie_broken_by_definition_order(self, spec):
        # WORD and NUM cannot tie; '=' vs '==' resolved by length. For
        # a genuine tie, add a token with the same pattern.
        s = LexSpec()
        s.define("A", "[x]+")
        s.define("B", "[x]+")
        tokens = Lexer(s).tokenize(b"xx")
        assert tokens[0].name == "A"

    def test_positions(self, spec):
        tokens = Lexer(spec).tokenize(b"  abc  42 ")
        assert (tokens[0].start, tokens[0].end) == (2, 5)
        assert (tokens[1].start, tokens[1].end) == (7, 9)

    def test_junk_raises_with_position(self, spec):
        with pytest.raises(ParseError) as info:
            Lexer(spec).tokenize(b"abc !")
        assert info.value.position == 4

    def test_empty_input(self, spec):
        assert Lexer(spec).tokenize(b"") == []
        assert Lexer(spec).tokenize(b"   ") == []


class TestContextSensitive:
    def test_allowed_set_restricts(self, spec):
        lexer = ContextSensitiveLexer(spec)
        token, pos = lexer.next_token(b"abc", 0, {"WORD"})
        assert token.name == "WORD"
        with pytest.raises(ParseError, match="expected one of"):
            lexer.next_token(b"abc", 0, {"NUM"})

    def test_context_resolves_identical_patterns(self):
        s = LexSpec()
        s.define("MONTH", "[0-9][0-9]")
        s.define("DAY", "[0-9][0-9]")
        lexer = ContextSensitiveLexer(s)
        token, pos = lexer.next_token(b"0704", 0, {"MONTH"})
        assert (token.name, token.lexeme) == ("MONTH", b"07")
        token, _ = lexer.next_token(b"0704", pos, {"DAY"})
        assert (token.name, token.lexeme) == ("DAY", b"04")

    def test_end_of_input_returns_none(self, spec):
        lexer = ContextSensitiveLexer(spec)
        token, pos = lexer.next_token(b"ab  ", 2, {"WORD"})
        assert token is None
        assert pos == 4

    def test_custom_delimiters(self):
        s = LexSpec()
        s.define("WORD", "[a-z]+")
        from repro.grammar.regex.ast import CharClass

        s.delimiters = CharClass(frozenset(b"|"))
        tokens = Lexer(s).tokenize(b"ab|cd")
        assert [t.lexeme for t in tokens] == [b"ab", b"cd"]
