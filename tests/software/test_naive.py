"""Naive context-free scanner (the false-positive baseline)."""

from repro.grammar.lexspec import LexSpec
from repro.software.naive import NaiveScanner


def _spec():
    spec = LexSpec()
    spec.define("NUM", "[0-9]+")
    spec.define_literal("cat")
    return spec


class TestScan:
    def test_finds_patterns_anywhere(self):
        hits = NaiveScanner(_spec()).scan(b"a12b3cat")
        assert [(h.name, h.start, h.end) for h in hits] == [
            ("cat", 5, 8),
            ("NUM", 1, 3),
            ("NUM", 4, 5),
        ] or sorted((h.name, h.start) for h in hits) == [
            ("NUM", 1), ("NUM", 4), ("cat", 5),
        ]

    def test_no_suffix_duplicates(self):
        hits = NaiveScanner(_spec()).scan(b"123")
        nums = [h for h in hits if h.name == "NUM"]
        assert len(nums) == 1
        assert nums[0].lexeme == b"123"

    def test_name_filter(self):
        hits = NaiveScanner(_spec()).scan(b"12cat", names={"cat"})
        assert [h.name for h in hits] == ["cat"]

    def test_boundary_aligned_mode(self):
        scanner = NaiveScanner(_spec(), boundary_aligned=True)
        hits = scanner.scan(b"x12 34")
        # '12' is mid-word (not after a delimiter) so only '34' hits.
        assert [h.lexeme for h in hits] == [b"34"]


class TestFindStrings:
    def test_every_occurrence_reported(self):
        hits = NaiveScanner.find_strings(b"xbuyxbuyx", [b"buy"])
        assert [(h.start, h.end) for h in hits] == [(1, 4), (5, 8)]

    def test_overlapping_needles(self):
        hits = NaiveScanner.find_strings(b"aaa", [b"aa"])
        assert [(h.start, h.end) for h in hits] == [(0, 2), (1, 3)]

    def test_multiple_needles_sorted(self):
        hits = NaiveScanner.find_strings(b"sell buy", [b"buy", b"sell"])
        assert [h.name for h in hits] == ["sell", "buy"]


class TestFalsePositiveDemonstration:
    def test_service_name_in_payload_hits_naive_only(self, xmlrpc_grammar):
        """The §1 motivation in miniature."""
        from repro.core.tagger import BehavioralTagger

        message = (
            b"<methodCall><methodName>buy</methodName><params>"
            b"<param><string>deposit</string></param>"
            b"</params></methodCall>"
        )
        naive_hits = NaiveScanner.find_strings(message, [b"deposit", b"buy"])
        assert len(naive_hits) == 2  # both names, no context

        tagger = BehavioralTagger(xmlrpc_grammar)
        method_values = [
            t.lexeme
            for t in tagger.tag(message)
            if xmlrpc_grammar.productions[t.occurrence.production].lhs.name
            == "methodName"
            and t.token == "STRING"
        ]
        assert method_values == [b"buy"]  # context kills the false hit
