"""LL(1) and recursive-descent reference parsers."""

import pytest

from repro.errors import GrammarError, ParseError
from repro.grammar.yacc_parser import parse_yacc_grammar
from repro.software.ll1 import LL1Parser
from repro.software.recursive_descent import RecursiveDescentParser


class TestLL1Construction:
    def test_xmlrpc_is_ll1(self, xmlrpc_grammar):
        LL1Parser(xmlrpc_grammar)

    def test_conflict_detected(self):
        g = parse_yacc_grammar(
            """
            %%
            s: "a" "b" | "a" "c";
            %%
            """
        )
        with pytest.raises(GrammarError, match="not LL"):
            LL1Parser(g)

    def test_rd_overlap_detected(self):
        g = parse_yacc_grammar(
            """
            %%
            s: "a" "b" | "a" "c";
            %%
            """
        )
        with pytest.raises(GrammarError, match="overlap"):
            RecursiveDescentParser(g)


@pytest.fixture(params=["ll1", "rd"])
def parser_factory(request):
    def make(grammar):
        if request.param == "ll1":
            parser = LL1Parser(grammar)
            return lambda data: parser.parse(data).tokens
        parser = RecursiveDescentParser(grammar)
        return parser.parse

    return make


class TestParsing:
    def test_ite_sentence(self, ite_grammar, parser_factory):
        parse = parser_factory(ite_grammar)
        tokens = parse(b"if true then go else stop")
        assert [t.token for t in tokens] == [
            "if", "true", "then", "go", "else", "stop",
        ]
        assert tokens[0].occurrence.context_name() == "p0.0"

    def test_nested(self, ite_grammar, parser_factory):
        parse = parser_factory(ite_grammar)
        tokens = parse(b"if true then if false then go else go else stop")
        assert len(tokens) == 11

    def test_epsilon_production(self, xmlrpc_grammar, parser_factory):
        parse = parser_factory(xmlrpc_grammar)
        data = (
            b"<methodCall><methodName>ping</methodName>"
            b"<params></params></methodCall>"
        )
        tokens = parse(data)
        assert [t.token for t in tokens][:3] == [
            "<methodCall>", "<methodName>", "STRING",
        ]

    def test_full_message(self, xmlrpc_grammar, parser_factory, xmlrpc_message):
        parse = parser_factory(xmlrpc_grammar)
        tokens = parse(xmlrpc_message)
        assert tokens[-1].token == "</methodCall>"

    @pytest.mark.parametrize(
        "bad",
        [
            b"if true go",              # missing then
            b"go stop",                 # trailing token
            b"<bogus>",
            b"if true then go else",    # truncated
        ],
    )
    def test_rejects_bad_input(self, ite_grammar, parser_factory, bad):
        parse = parser_factory(ite_grammar)
        with pytest.raises(ParseError):
            parse(bad)

    def test_trailing_junk_rejected(self, ite_grammar, parser_factory):
        parse = parser_factory(ite_grammar)
        with pytest.raises(ParseError):
            parse(b"go !!!")


class TestParseTree:
    def test_tree_structure(self, ite_grammar):
        result = LL1Parser(ite_grammar).parse(b"if true then go else stop")
        tree = result.tree
        assert tree.symbol.name == "E"
        assert len(tree.children) == 6  # if C then E else E
        leaves = tree.leaves()
        assert [t.token for t in leaves] == [
            "if", "true", "then", "go", "else", "stop",
        ]

    def test_render(self, ite_grammar):
        result = LL1Parser(ite_grammar).parse(b"go")
        text = result.tree.render()
        assert "E" in text and "go" in text


class TestParseStream:
    def test_multiple_messages(self, xmlrpc_grammar):
        parser = LL1Parser(xmlrpc_grammar)
        one = (
            b"<methodCall><methodName>a1</methodName>"
            b"<params></params></methodCall>"
        )
        results = parser.parse_stream(one + b"\n" + one + b"\n" + one)
        assert len(results) == 3
        for result in results:
            assert result.tokens[0].token == "<methodCall>"

    def test_workload_stream(self, xmlrpc_grammar, xmlrpc_stream):
        parser = LL1Parser(xmlrpc_grammar)
        results = parser.parse_stream(xmlrpc_stream)
        assert len(results) == 8
