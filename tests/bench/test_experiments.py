"""Experiment harness: scaling workload, Table 1, Fig. 15, ablations.

These tests validate the *harness* (structure, determinism, anchor
accuracy, curve shape); the full runs live in ``benchmarks/``.
"""

import pytest

from repro.bench.scaling import PAPER_SCALE_POINTS, scale_point_grammar, scaled_xmlrpc
from repro.bench.falsepos import run_false_positive
from repro.bench.table1 import TABLE1_PAPER, format_table1, run_table1
from repro.bench.figure15 import (
    FIGURE15_PAPER,
    ascii_plot,
    format_figure15,
    run_figure15,
)


class TestScalingWorkload:
    def test_single_copy_is_fig14(self):
        g = scaled_xmlrpc(1)
        assert g.lexspec.total_pattern_bytes() == 289

    def test_copies_scale_bytes_linearly(self):
        b1 = scaled_xmlrpc(1).lexspec.total_pattern_bytes()
        b2 = scaled_xmlrpc(2).lexspec.total_pattern_bytes()
        b4 = scaled_xmlrpc(4).lexspec.total_pattern_bytes()
        assert b2 > 2 * b1 * 0.9
        assert (b4 - b2) == pytest.approx(2 * (b2 - b1) / 2 * 2, rel=0.2)

    def test_scale_points_near_paper_targets(self):
        for target, copies in PAPER_SCALE_POINTS:
            actual = scale_point_grammar(copies).lexspec.total_pattern_bytes()
            assert actual == pytest.approx(target, rel=0.18), (target, actual)

    def test_copies_are_disjoint_grammars(self):
        g = scaled_xmlrpc(2)
        names = {t.name for t in g.lexspec}
        assert "<methodCall_1>" in names and "<methodCall_2>" in names

    def test_punctuation_literals_shared(self):
        g = scaled_xmlrpc(3)
        colons = [t for t in g.lexspec if t.name == ":"]
        assert len(colons) == 1

    def test_scaled_grammar_tags_renamed_messages(self):
        from repro.core.tagger import BehavioralTagger

        g = scaled_xmlrpc(2)
        message = (
            b"<methodCall_2><methodName_2>buy</methodName_2>"
            b"<params_2></params_2></methodCall_2>"
        )
        tokens = [t.token for t in BehavioralTagger(g).tag(message)]
        assert tokens[0] == "<methodCall_2>"
        assert "STRING_2" in tokens

    def test_bad_copy_count(self):
        with pytest.raises(ValueError):
            scaled_xmlrpc(0)


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1()


class TestTable1:
    def test_six_rows(self, table1_rows):
        assert len(table1_rows) == len(TABLE1_PAPER) == 6

    def test_anchor_frequencies_exact(self, table1_rows):
        """Calibration anchors: 533/316 MHz on V4, 196 MHz on VirtexE."""
        by_key = {
            (row.paper[0], row.paper[3]): row.measured for row in table1_rows
        }
        assert by_key[("virtex4-lx200", 300)].frequency_mhz == pytest.approx(533, rel=0.02)
        assert by_key[("virtex4-lx200", 3000)].frequency_mhz == pytest.approx(316, rel=0.02)
        assert by_key[("virtexe-2000", 300)].frequency_mhz == pytest.approx(196, rel=0.02)

    def test_all_frequencies_within_25pct(self, table1_rows):
        for row in table1_rows:
            paper_mhz = row.paper[1]
            assert row.measured.frequency_mhz == pytest.approx(
                paper_mhz, rel=0.25
            ), row.paper

    def test_bandwidth_consistent(self, table1_rows):
        for row in table1_rows:
            assert row.measured.bandwidth_gbps == pytest.approx(
                row.measured.frequency_mhz * 8 / 1000, abs=0.02
            )

    def test_luts_per_byte_declines_with_size(self, table1_rows):
        v4 = sorted(
            (r.measured for r in table1_rows if r.measured.device.family == "virtex4"),
            key=lambda m: m.pattern_bytes,
        )
        ratios = [m.luts_per_byte for m in v4]
        assert ratios[0] > ratios[-1]

    def test_format(self, table1_rows):
        text = format_table1(table1_rows)
        assert "Table 1" in text and "VirtexE 2000" in text


@pytest.fixture(scope="module")
def figure15_points():
    return run_figure15()


class TestFigure15:
    def test_five_points(self, figure15_points):
        assert len(figure15_points) == len(FIGURE15_PAPER) == 5

    def test_frequency_monotonically_non_increasing(self, figure15_points):
        freqs = [p.measured.frequency_mhz for p in figure15_points]
        assert all(a >= b - 1e-6 for a, b in zip(freqs, freqs[1:]))

    def test_ratio_monotonically_non_increasing(self, figure15_points):
        ratios = [p.measured.luts_per_byte for p in figure15_points]
        assert all(a >= b - 1e-6 for a, b in zip(ratios, ratios[1:]))

    def test_routing_bound_at_large_sizes(self, figure15_points):
        assert figure15_points[-1].measured.timing.critical_kind == "routing"

    def test_worst_route_near_2ns_at_3000_bytes(self, figure15_points):
        """The paper's §4.3: 'just under 2 nanoseconds'."""
        assert figure15_points[-1].worst_route_ns == pytest.approx(2.0, abs=0.15)
        assert figure15_points[-1].worst_route_ns < 2.0

    def test_renders(self, figure15_points):
        assert "Figure 15" in format_figure15(figure15_points)
        assert "MHz" in ascii_plot(figure15_points)


class TestFalsePositive:
    def test_contextual_beats_naive(self):
        result = run_false_positive(n_messages=40, adversarial_rate=0.5, seed=1)
        assert result.contextual_correct == result.n_messages
        assert result.naive_correct < result.n_messages
        assert result.naive_false_positives >= result.n_decoys
        assert "false-positive" in result.summary()

    def test_clean_stream_both_perfect(self):
        result = run_false_positive(n_messages=20, adversarial_rate=0.0, seed=2)
        assert result.contextual_correct == 20
        assert result.naive_correct == 20


class TestAblation:
    def test_lookahead_counts(self):
        from repro.bench.ablation import count_repeat_detections

        with_la, without = count_repeat_detections(run_length=8)
        assert with_la == 1
        assert without == 8
